package soak

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/pkg/bwaclient"
)

// worker is one load generator: a seeded stream of operations drawn from
// the weighted mix until the load context expires. Worker id feeds the
// seed so the fleet is deterministic as a set but not in lockstep.
func (r *runner) worker(ctx context.Context, id int) {
	rng := rand.New(rand.NewSource(r.o.Seed + int64(id)*7919 + 13))
	for ctx.Err() == nil {
		r.step(ctx, rng)
	}
}

// step draws one operation. Weights: the align paths dominate (they are
// the point), with a steady trickle of adversarial and observability ops.
func (r *runner) step(ctx context.Context, rng *rand.Rand) {
	switch n := rng.Intn(100); {
	case n < 30:
		t := r.w.singles[rng.Intn(len(r.w.singles))]
		r.doAlign(ctx, rng, opSingle, t)
	case n < 52:
		t := r.w.paireds[rng.Intn(len(r.w.paireds))]
		r.doAlign(ctx, rng, opPaired, t)
	case n < 62:
		t := r.w.singles[rng.Intn(len(r.w.singles))]
		r.doAlign(ctx, rng, opSlow, t)
	case n < 72:
		t := r.w.singles[rng.Intn(len(r.w.singles))]
		r.doCancel(ctx, rng, t)
	case n < 78:
		r.doReject(ctx, opOversize, r.w.oversize)
	case n < 86:
		r.doReject(ctx, opMalformed, r.w.malformed[rng.Intn(len(r.w.malformed))])
	case n < 93:
		r.doHealth(ctx)
	default:
		r.doMetrics(ctx)
	}
}

// transportRetrySleep is the harness's own backoff between transport
// retries (connection refused during a chaos restart, mostly). Distinct
// from bwaclient's 429 backoff, which stays internal to the client.
func transportRetrySleep(ctx context.Context, attempt int) {
	d := 500 * time.Millisecond << uint(attempt)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// doAlign runs one success-path align operation (single, paired, or
// slow-reader) and checks the byte-identity and error-envelope
// invariants on the outcome.
func (r *runner) doAlign(ctx context.Context, rng *rand.Rand, op string, t template) {
	acc := r.ops[op]
	acc.attempts.Add(1)
	nreads := int64(len(t.reads) + len(t.r1) + len(t.r2))
	for attempt := 0; ; attempt++ {
		reqCtx, cancel := context.WithTimeout(ctx, opTimeout)
		start := time.Now()
		var got []byte
		var err error
		switch op {
		case opPaired:
			got, err = r.client.AlignPairedSAM(reqCtx, t.r1, t.r2)
		case opSlow:
			got, err = r.drainSlow(reqCtx, t.reads)
		default:
			got, err = r.client.AlignSAM(reqCtx, t.reads)
		}
		lat := time.Since(start)
		cancel()
		ph := r.cur.Load()

		if err == nil {
			acc.ok.Add(1)
			ph.requests.Add(1)
			ph.reads.Add(nreads)
			ph.samBytes.Add(int64(len(got)))
			ph.lat.Observe(lat)
			if !bytes.Equal(got, t.want) {
				r.violate("byte-identity", "op %s: response (%d bytes) differs from offline pipeline oracle (%d bytes)",
					op, len(got), len(t.want))
			}
			return
		}
		if r.classifyRejection(op, acc, ph, err, "") {
			return
		}
		if ctx.Err() != nil {
			return // run deadline hit mid-flight: not a fault
		}
		if attempt < r.o.Retries {
			acc.retried.Add(1)
			ph.retried.Add(1)
			transportRetrySleep(ctx, attempt)
			continue
		}
		acc.transport.Add(1)
		ph.transport.Add(1)
		r.violate("transport-error", "op %s: %v", op, err)
		return
	}
}

// drainSlow is the slow-reader client: it consumes the SAM stream a few
// records at a time with deliberate stalls, holding the response (and the
// server's admission slots) open far longer than a bulk read would.
func (r *runner) drainSlow(ctx context.Context, reads []bwaclient.Read) ([]byte, error) {
	st, err := r.client.Align(ctx, reads)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	var buf bytes.Buffer
	n := 0
	for st.Next() {
		buf.Write(st.Record())
		buf.WriteByte('\n')
		if n++; n%4 == 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Millisecond):
			}
		}
	}
	if err := st.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// doCancel abandons an align request after a few milliseconds. Any error
// outcome is acceptable (the deadline usually wins the race, but the
// server can answer first under light load — then the oracle still
// applies); what the run checks is that budgets drain afterwards, via the
// follow-up traffic and the end-of-run metrics.
func (r *runner) doCancel(ctx context.Context, rng *rand.Rand, t template) {
	acc := r.ops[opCancel]
	acc.attempts.Add(1)
	d := time.Duration(1+rng.Intn(15)) * time.Millisecond
	reqCtx, cancel := context.WithTimeout(ctx, d)
	got, err := r.client.AlignSAM(reqCtx, t.reads)
	cancel()
	ph := r.cur.Load()
	if err == nil {
		acc.ok.Add(1)
		ph.requests.Add(1)
		ph.reads.Add(int64(len(t.reads)))
		ph.samBytes.Add(int64(len(got)))
		if !bytes.Equal(got, t.want) {
			r.violate("byte-identity", "op %s: response (%d bytes) differs from offline pipeline oracle (%d bytes)",
				opCancel, len(got), len(t.want))
		}
		return
	}
	if ctx.Err() == nil && r.classifyRejection(opCancel, acc, ph, err, "") {
		return
	}
	acc.cancelled.Add(1)
	ph.cancelled.Add(1)
}

// doReject sends a request the server must refuse and asserts the typed
// error envelope: an *APIError carrying the template's expected code
// (load shedding and drain rejections are also legitimate answers).
func (r *runner) doReject(ctx context.Context, op string, t template) {
	acc := r.ops[op]
	acc.attempts.Add(1)
	for attempt := 0; ; attempt++ {
		reqCtx, cancel := context.WithTimeout(ctx, opTimeout)
		_, err := r.client.AlignSAM(reqCtx, t.reads)
		cancel()
		ph := r.cur.Load()
		if err == nil {
			acc.ok.Add(1)
			r.violate("error-envelope", "op %s: request the server must reject (%s) was accepted", op, t.wantCode)
			return
		}
		if r.classifyRejection(op, acc, ph, err, t.wantCode) {
			return
		}
		if ctx.Err() != nil {
			return
		}
		if attempt < r.o.Retries {
			acc.retried.Add(1)
			ph.retried.Add(1)
			transportRetrySleep(ctx, attempt)
			continue
		}
		acc.transport.Add(1)
		ph.transport.Add(1)
		r.violate("transport-error", "op %s: %v", op, err)
		return
	}
}

// classifyRejection inspects an align error. A typed *APIError is
// recorded under its code and, when the op expects a specific code,
// checked against it; an untyped status rejection is an error-envelope
// violation. Returns false for transport-level errors (caller retries).
func (r *runner) classifyRejection(op string, acc *opAcc, ph *phaseAcc, err error, wantCode string) bool {
	var apiErr *bwaclient.APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	code := apiErr.Code
	if code == "" {
		r.violate("error-envelope", "op %s: HTTP %d rejection without a typed error code", op, apiErr.StatusCode)
		code = fmt.Sprintf("http_%d", apiErr.StatusCode)
	} else if wantCode != "" &&
		code != wantCode && code != bwaclient.CodeOverloaded && code != bwaclient.CodeDraining {
		r.violate("error-envelope", "op %s: rejected with code %q, want %q", op, code, wantCode)
	}
	acc.reject(code)
	ph.reject(code)
	return true
}

// doHealth polls /v1/healthz. Under load the server must report a
// well-formed status; transport failures follow the retry policy (they
// are expected only around chaos restarts).
func (r *runner) doHealth(ctx context.Context) {
	acc := r.ops[opHealth]
	acc.attempts.Add(1)
	for attempt := 0; ; attempt++ {
		reqCtx, cancel := context.WithTimeout(ctx, opTimeout)
		h, err := r.client.Health(reqCtx)
		cancel()
		ph := r.cur.Load()
		if err == nil {
			acc.ok.Add(1)
			if h.Status != "ok" && h.Status != "draining" {
				r.violate("health", "healthz status %q", h.Status)
			}
			return
		}
		if r.classifyRejection(opHealth, acc, ph, err, "") {
			return
		}
		if ctx.Err() != nil {
			return
		}
		if attempt < r.o.Retries {
			acc.retried.Add(1)
			ph.retried.Add(1)
			transportRetrySleep(ctx, attempt)
			continue
		}
		acc.transport.Add(1)
		ph.transport.Add(1)
		r.violate("transport-error", "op %s: %v", opHealth, err)
		return
	}
}

// doMetrics polls /v1/metrics, sharing the align traffic's connections —
// the scrape path must stay functional under full load.
func (r *runner) doMetrics(ctx context.Context) {
	acc := r.ops[opMetrics]
	acc.attempts.Add(1)
	for attempt := 0; ; attempt++ {
		reqCtx, cancel := context.WithTimeout(ctx, opTimeout)
		text, err := r.client.Metrics(reqCtx)
		cancel()
		ph := r.cur.Load()
		if err == nil {
			acc.ok.Add(1)
			if len(text) == 0 {
				r.violate("metrics", "empty /v1/metrics body under load")
			}
			return
		}
		if r.classifyRejection(opMetrics, acc, ph, err, "") {
			return
		}
		if ctx.Err() != nil {
			return
		}
		if attempt < r.o.Retries {
			acc.retried.Add(1)
			ph.retried.Add(1)
			transportRetrySleep(ctx, attempt)
			continue
		}
		acc.transport.Add(1)
		ph.transport.Add(1)
		r.violate("transport-error", "op %s: %v", opMetrics, err)
		return
	}
}
