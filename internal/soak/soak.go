// Package soak is the sustained-load harness behind cmd/bwasoak: a
// seeded, mixed workload driven entirely through pkg/bwaclient against a
// live alignment server — in-process (pkg/bwamem.NewServer) for CI, a
// spawned bwaserve subprocess for chaos mode, or any external /v1 target.
//
// While load runs it checks the invariants one request can't: every
// successful response byte-identical to the offline pipeline oracle,
// a typed error envelope on every rejection, no goroutine or heap growth
// across checkpoints, p99 end-to-end latency (from the server's own
// histogram buckets) under a configurable SLO, and clean drain at the
// end. The outcome is a bwago-soak/v1 Report; an empty Violations list is
// the pass signal.
package soak

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/pkg/bwaclient"
)

// Options are the knobs of one soak run. Flags binds them to a FlagSet
// with matching names; DefaultOptions is the CI-friendly baseline.
type Options struct {
	Duration        time.Duration // -duration: how long load runs
	Seed            int64         // -seed: workload determinism root
	Workers         int           // -workers: concurrent client workers
	GenomeBP        int           // -genome-bp: synthetic reference size
	GenomeSeed      int64         // -genome-seed: synthetic reference seed
	ReadLen         int           // -read-len: simulated read length
	Threads         int           // -threads: server worker threads (0 = NumCPU)
	BatchSize       int           // -batch: server batch size
	MaxInflight     int           // -max-inflight: server admission budget
	MaxRequestReads int           // -max-request-reads: server per-request cap
	MaxReadLen      int           // -max-read-len: server per-read length cap
	Target          string        // -target: external /v1 base URL (empty = own server)
	Topology        string        // -topology: "single" (default) or "gateway:N"
	Chaos           string        // -chaos: "" or "kill-restart" (subprocess target)
	ChaosInterval   time.Duration // -chaos-interval: time between kills
	ServerBin       string        // -server-bin: bwaserve binary for chaos (empty = go build)
	Retries         int           // -retries: transport-failure retries per op (0 = any transport error is a violation)
	SLOp99          time.Duration // -slo-p99: p99 latency SLO from server buckets (0 disables)
	Report          string        // -report: also write the JSON report to this file
}

// DefaultOptions returns the baseline configuration: 30s of mixed load
// from 8 workers against an in-process server on a 200kb synthetic
// reference.
func DefaultOptions() Options {
	return Options{
		Duration:        30 * time.Second,
		Seed:            1,
		Workers:         8,
		GenomeBP:        200000,
		GenomeSeed:      42,
		ReadLen:         101,
		BatchSize:       64,
		MaxInflight:     512,
		MaxRequestReads: 256,
		MaxReadLen:      65536,
		ChaosInterval:   8 * time.Second,
		Retries:         5,
		SLOp99:          5 * time.Second,
	}
}

// Flags registers every option on fs and returns the bound Options. The
// flag names here are the documented surface of cmd/bwasoak — the README
// table is drift-checked against this registration.
func Flags(fs *flag.FlagSet) *Options {
	o := DefaultOptions()
	fs.DurationVar(&o.Duration, "duration", o.Duration, "how long to sustain load")
	fs.Int64Var(&o.Seed, "seed", o.Seed, "workload seed (same seed, same request mix)")
	fs.IntVar(&o.Workers, "workers", o.Workers, "concurrent client workers")
	fs.IntVar(&o.GenomeBP, "genome-bp", o.GenomeBP, "synthetic reference size in bp")
	fs.Int64Var(&o.GenomeSeed, "genome-seed", o.GenomeSeed, "synthetic reference seed (must match an external target's)")
	fs.IntVar(&o.ReadLen, "read-len", o.ReadLen, "simulated read length")
	fs.IntVar(&o.Threads, "threads", o.Threads, "server worker threads (0 = NumCPU)")
	fs.IntVar(&o.BatchSize, "batch", o.BatchSize, "server reads per batch")
	fs.IntVar(&o.MaxInflight, "max-inflight", o.MaxInflight, "server admission budget in reads (429 beyond)")
	fs.IntVar(&o.MaxRequestReads, "max-request-reads", o.MaxRequestReads, "server per-request read cap (the oversize op sends one more)")
	fs.IntVar(&o.MaxReadLen, "max-read-len", o.MaxReadLen, "server per-read length cap (the malformed op sends one longer)")
	fs.StringVar(&o.Target, "target", o.Target, "external server base URL instead of an in-process server")
	fs.StringVar(&o.Topology, "topology", o.Topology, "target topology: single (default) or gateway:N — N replicas behind an in-process bwagate")
	fs.StringVar(&o.Chaos, "chaos", o.Chaos, "chaos mode: kill-restart (spawns bwaserve as a subprocess)")
	fs.DurationVar(&o.ChaosInterval, "chaos-interval", o.ChaosInterval, "time between chaos kills")
	fs.StringVar(&o.ServerBin, "server-bin", o.ServerBin, "bwaserve binary for chaos mode (empty: go build ./cmd/bwaserve)")
	fs.IntVar(&o.Retries, "retries", o.Retries, "transport-failure retries per operation; 0 makes any transport error a violation")
	fs.DurationVar(&o.SLOp99, "slo-p99", o.SLOp99, "p99 request-latency SLO checked against the server's histogram buckets (0 disables)")
	fs.StringVar(&o.Report, "report", o.Report, "also write the JSON report to this file")
	return &o
}

// gatewayReplicas parses -topology: 0 for the default single-server
// topology, N for "gateway:N".
func (o *Options) gatewayReplicas() (int, error) {
	switch {
	case o.Topology == "" || o.Topology == "single":
		return 0, nil
	case strings.HasPrefix(o.Topology, "gateway:"):
		n, err := strconv.Atoi(strings.TrimPrefix(o.Topology, "gateway:"))
		if err != nil || n < 1 {
			return 0, fmt.Errorf("soak: -topology gateway:N needs a positive replica count, got %q", o.Topology)
		}
		return n, nil
	default:
		return 0, fmt.Errorf("soak: unknown -topology %q (want single or gateway:N)", o.Topology)
	}
}

func (o *Options) validate() error {
	if o.Duration <= 0 {
		return fmt.Errorf("soak: -duration must be positive")
	}
	if o.Workers <= 0 {
		return fmt.Errorf("soak: -workers must be positive")
	}
	if o.Chaos != "" && o.Chaos != "kill-restart" {
		return fmt.Errorf("soak: unknown -chaos mode %q (want kill-restart)", o.Chaos)
	}
	if o.Chaos != "" && o.Target != "" {
		return fmt.Errorf("soak: -chaos spawns its own server; it cannot be combined with -target")
	}
	gwN, err := o.gatewayReplicas()
	if err != nil {
		return err
	}
	if gwN > 0 && o.Target != "" {
		return fmt.Errorf("soak: -topology gateway stands up its own replicas; it cannot be combined with -target")
	}
	if gwN == 1 && o.Chaos != "" {
		return fmt.Errorf("soak: gateway chaos needs at least 2 replicas to ride through a kill (-topology gateway:2)")
	}
	if o.MaxRequestReads > o.MaxInflight {
		return fmt.Errorf("soak: -max-request-reads %d exceeds -max-inflight %d (every request would shed)",
			o.MaxRequestReads, o.MaxInflight)
	}
	return nil
}

// opTimeout bounds any single operation so a wedged server fails the run
// instead of hanging it.
const opTimeout = 60 * time.Second

// phaseAcc accumulates one phase of the load timeline.
type phaseAcc struct {
	name     string
	start    time.Time
	duration time.Duration // set when the phase closes

	requests  atomic.Int64
	reads     atomic.Int64
	samBytes  atomic.Int64
	transport atomic.Int64
	cancelled atomic.Int64
	retried   atomic.Int64

	mu         sync.Mutex
	rejections map[string]int64

	lat *obs.Histogram
}

func (p *phaseAcc) reject(code string) {
	p.mu.Lock()
	p.rejections[code]++
	p.mu.Unlock()
}

// opAcc accumulates one workload operation across the run.
type opAcc struct {
	attempts  atomic.Int64
	ok        atomic.Int64
	transport atomic.Int64
	cancelled atomic.Int64
	retried   atomic.Int64

	mu         sync.Mutex
	rejections map[string]int64
}

func (a *opAcc) reject(code string) {
	a.mu.Lock()
	a.rejections[code]++
	a.mu.Unlock()
}

// maxViolationsPerKind bounds how many instances of one invariant kind
// are recorded verbatim: under a persistent fault every request violates,
// and ten thousand copies of the same line help no one.
const maxViolationsPerKind = 3

type runner struct {
	o      *Options
	w      *workload
	client *bwaclient.Client
	tr     *http.Transport
	logf   func(string, ...any)

	phasePrefix string // "gateway-" under the gateway topology
	phaseMu     sync.Mutex
	phases      []*phaseAcc
	cur         atomic.Pointer[phaseAcc]

	ops map[string]*opAcc

	vioMu    sync.Mutex
	vioCount map[string]int
	vios     []string

	sampleMu    sync.Mutex
	samples     int
	baseline    RuntimeSample
	finalClient RuntimeSample
	srvBase     *RuntimeSample
	srvFinal    *RuntimeSample
}

func (r *runner) violate(kind, format string, args ...any) {
	r.vioMu.Lock()
	defer r.vioMu.Unlock()
	r.vioCount[kind]++
	if r.vioCount[kind] <= maxViolationsPerKind {
		r.vios = append(r.vios, kind+": "+fmt.Sprintf(format, args...))
	}
}

func (r *runner) beginPhase(name string) {
	r.phaseMu.Lock()
	defer r.phaseMu.Unlock()
	now := time.Now()
	if cur := r.cur.Load(); cur != nil {
		cur.duration = now.Sub(cur.start)
	}
	p := &phaseAcc{name: r.phasePrefix + name, start: now, rejections: make(map[string]int64), lat: &obs.Histogram{}}
	r.phases = append(r.phases, p)
	r.cur.Store(p)
}

func (r *runner) closePhases() {
	r.phaseMu.Lock()
	defer r.phaseMu.Unlock()
	if cur := r.cur.Load(); cur != nil && cur.duration == 0 {
		cur.duration = time.Since(cur.start)
	}
}

// Run executes one soak: build the deterministic workload, stand up (or
// dial) the target, sustain the mix for o.Duration while checking
// invariants, then drain and report. The returned error covers setup
// failures only — invariant failures land in Report.Violations so the
// caller still gets the full report.
func Run(ctx context.Context, o Options, logf func(string, ...any)) (*Report, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.Threads <= 0 {
		o.Threads = runtime.NumCPU()
	}

	logf("soak: building workload (genome %d bp, seed %d)", o.GenomeBP, o.Seed)
	w, err := buildWorkload(&o)
	if err != nil {
		return nil, err
	}

	// Stand up the target.
	gwN, _ := o.gatewayReplicas()
	var (
		baseURL string
		local   *localServer
		child   *childServer
		gate    *gatewayTarget
	)
	switch {
	case o.Target != "":
		baseURL = o.Target
	case gwN > 0:
		gate, err = startGatewayTarget(ctx, &o, gwN, w.idx, logf)
		if err != nil {
			return nil, err
		}
		defer gate.stop()
		baseURL = gate.baseURL
	case o.Chaos != "":
		child, err = startChildServer(ctx, &o, logf)
		if err != nil {
			return nil, err
		}
		defer child.stop()
		baseURL = child.baseURL
	default:
		local, err = startLocalServer(&o, w.idx, logf)
		if err != nil {
			return nil, err
		}
		defer local.stop()
		baseURL = local.baseURL
	}

	// One client, one transport: wide enough idle pool that workers reuse
	// connections, and ours to close before the leak check.
	tr := &http.Transport{MaxIdleConns: 4 * o.Workers, MaxIdleConnsPerHost: 4 * o.Workers}
	client, err := bwaclient.New(baseURL, bwaclient.WithHTTPClient(&http.Client{Transport: tr}))
	if err != nil {
		return nil, err
	}

	r := &runner{
		o: &o, w: w, client: client, tr: tr, logf: logf,
		ops:      make(map[string]*opAcc),
		vioCount: make(map[string]int),
	}
	if gate != nil {
		r.phasePrefix = "gateway-"
	}
	for _, op := range []string{opSingle, opPaired, opSlow, opCancel, opOversize, opMalformed, opHealth, opMetrics} {
		r.ops[op] = &opAcc{rejections: make(map[string]int64)}
	}

	// Warm up (establish connections, fault early on a dead target) and
	// take the leak baseline before load starts.
	warmCtx, warmCancel := context.WithTimeout(ctx, opTimeout)
	_, err = client.AlignSAM(warmCtx, w.singles[0].reads)
	warmCancel()
	if err != nil {
		return nil, fmt.Errorf("soak: warm-up request against %s: %w", baseURL, err)
	}
	r.takeBaseline(ctx)

	// Load.
	deadline := time.Now().Add(o.Duration)
	loadCtx, cancelLoad := context.WithDeadline(ctx, deadline)
	defer cancelLoad()
	r.beginPhase("steady")
	logf("soak: %d workers for %s against %s (chaos=%q)", o.Workers, o.Duration, baseURL, o.Chaos)

	var wg sync.WaitGroup
	for i := 0; i < o.Workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r.worker(loadCtx, id)
		}(i)
	}
	// Checkpoint sampler: runtime growth observed while load runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.sampler(loadCtx)
	}()
	// Chaos controller.
	if child != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.chaos(loadCtx, child, deadline)
		}()
	}
	if gate != nil && o.Chaos != "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.chaosGateway(loadCtx, gate, deadline)
		}()
	}
	wg.Wait()
	r.closePhases()
	logf("soak: load complete (%d phases)", len(r.phases))

	rep := &Report{
		Config: ConfigInfo{
			DurationSeconds: o.Duration.Seconds(), Seed: o.Seed, Workers: o.Workers,
			GenomeBP: o.GenomeBP, GenomeSeed: o.GenomeSeed, ReadLen: o.ReadLen,
			Threads: o.Threads, BatchSize: o.BatchSize, MaxInflight: o.MaxInflight,
			MaxRequestReads: o.MaxRequestReads, Target: o.Target, Topology: o.Topology,
			Chaos: o.Chaos, Retries: o.Retries, SLOp99Seconds: o.SLOp99.Seconds(),
		},
	}

	// Post-load invariants: server-side latency SLO and runtime growth,
	// read from /v1/metrics exactly as a dashboard would. The gateway tier
	// first drops its idle upstream pool — those transport goroutines are
	// bounded by configuration, not leaked, and would otherwise dominate
	// the resting-footprint sample.
	if gate != nil {
		gate.gw.CloseIdleConnections()
	}
	r.finishServerChecks(ctx, rep)

	// Clean drain.
	switch {
	case local != nil:
		if err := local.drain(); err != nil {
			r.violate("drain", "in-process server: %v", err)
		}
	case child != nil:
		if err := child.drain(); err != nil {
			r.violate("drain", "bwaserve subprocess: %v", err)
		}
	case gate != nil:
		if err := gate.drain(); err != nil {
			r.violate("drain", "gateway tier: %v", err)
		}
	}

	// Client-side leak check: with the load gone, our own idle connections
	// closed, and (in-process) the server drained, the process must be
	// back to its baseline footprint.
	r.tr.CloseIdleConnections()
	r.checkClientLeaks()

	r.fill(rep)
	return rep, nil
}

// takeBaseline records the pre-load runtime footprint, client and server.
func (r *runner) takeBaseline(ctx context.Context) {
	r.baseline = clientRuntimeSample()
	mctx, cancel := context.WithTimeout(ctx, opTimeout)
	defer cancel()
	if text, err := r.client.Metrics(mctx); err == nil {
		if s, ok := serverRuntimeSample(text); ok {
			r.srvBase = &s
		}
	}
}

func clientRuntimeSample() RuntimeSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeSample{Goroutines: runtime.NumGoroutine(), HeapAllocBytes: float64(ms.HeapAlloc)}
}

// Leak slack: shutting-down goroutines and transport internals wobble by
// a few; growth beyond this after the grace window is a leak, not noise.
const (
	goroutineSlack = 16
	heapSlackBytes = 64 << 20
)

func (r *runner) checkClientLeaks() {
	var last RuntimeSample
	for i := 0; i < 25; i++ {
		runtime.GC()
		last = clientRuntimeSample()
		if last.Goroutines <= r.baseline.Goroutines+goroutineSlack &&
			last.HeapAllocBytes <= 2*r.baseline.HeapAllocBytes+heapSlackBytes {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if last.Goroutines > r.baseline.Goroutines+goroutineSlack {
		r.violate("goroutine-growth", "client process: %d goroutines after load, baseline %d (slack %d)",
			last.Goroutines, r.baseline.Goroutines, goroutineSlack)
	}
	if last.HeapAllocBytes > 2*r.baseline.HeapAllocBytes+heapSlackBytes {
		r.violate("heap-growth", "client process: %.0f heap bytes after load, baseline %.0f",
			last.HeapAllocBytes, r.baseline.HeapAllocBytes)
	}
	r.sampleMu.Lock()
	r.samples++
	r.sampleMu.Unlock()
	r.finalClient = last
}

// finishServerChecks reads the target's metrics one last time: request
// latency quantiles for the report and the SLO, runtime gauges for the
// server-side leak check. Transient unavailability (a chaos restart just
// happened) is retried briefly.
func (r *runner) finishServerChecks(ctx context.Context, rep *Report) {
	var text string
	var err error
	for i := 0; i < 5; i++ {
		mctx, cancel := context.WithTimeout(ctx, opTimeout)
		text, err = r.client.Metrics(mctx)
		cancel()
		if err == nil {
			break
		}
		time.Sleep(500 * time.Millisecond)
	}
	if err != nil {
		r.violate("metrics-unreachable", "final /v1/metrics fetch: %v", err)
		return
	}
	rep.ServerLatency = requestLatency(text)
	if r.o.SLOp99 > 0 {
		slo := r.o.SLOp99.Seconds()
		kinds := make([]string, 0, len(rep.ServerLatency))
		for kind := range rep.ServerLatency {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			q := rep.ServerLatency[kind]
			if q.Count > 0 && q.P99 > slo {
				r.violate("p99-slo", "kind=%s p99=%.4fs exceeds SLO %.4fs (n=%d)", kind, q.P99, slo, q.Count)
			}
		}
	}
	s, okSample := serverRuntimeSample(text)
	if okSample && r.srvBase != nil {
		// Connection and transport goroutines wind down asynchronously
		// once load stops; re-sample briefly before calling growth a leak.
		for i := 0; i < 10 && s.Goroutines > r.srvBase.Goroutines+2*goroutineSlack; i++ {
			time.Sleep(200 * time.Millisecond)
			mctx, cancel := context.WithTimeout(ctx, opTimeout)
			again, merr := r.client.Metrics(mctx)
			cancel()
			if merr != nil {
				break
			}
			if s2, ok2 := serverRuntimeSample(again); ok2 {
				s = s2
			}
		}
	}
	if okSample {
		r.srvFinal = &s
		if r.srvBase != nil {
			if s.Goroutines > r.srvBase.Goroutines+2*goroutineSlack {
				r.violate("server-goroutine-growth", "%d goroutines after load, baseline %d",
					s.Goroutines, r.srvBase.Goroutines)
			}
			if s.HeapAllocBytes > 3*r.srvBase.HeapAllocBytes+2*heapSlackBytes {
				r.violate("server-heap-growth", "%.0f heap bytes after load, baseline %.0f",
					s.HeapAllocBytes, r.srvBase.HeapAllocBytes)
			}
		}
	}
}

// sampler periodically records runtime samples while load runs; the
// count lands in the report (the leak verdict uses baseline vs final).
func (r *runner) sampler(ctx context.Context) {
	interval := r.o.Duration / 6
	if interval < time.Second {
		interval = time.Second
	}
	if interval > 5*time.Second {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.sampleMu.Lock()
			r.samples++
			r.sampleMu.Unlock()
		}
	}
}

// fill converts the accumulators into the report shape.
func (r *runner) fill(rep *Report) {
	for _, p := range r.phases {
		secs := p.duration.Seconds()
		ps := &PhaseStats{
			Name: p.name, Seconds: secs,
			Requests: p.requests.Load(), Reads: p.reads.Load(), SAMBytes: p.samBytes.Load(),
			TransportErrors: p.transport.Load(), Cancelled: p.cancelled.Load(), Retried: p.retried.Load(),
			Latency: Quantiles{
				Count: p.lat.Count(),
				P50:   p.lat.Quantile(0.50), P90: p.lat.Quantile(0.90), P99: p.lat.Quantile(0.99),
			},
		}
		if secs > 0 {
			ps.ReadsPerSec = float64(ps.Reads) / secs
		}
		p.mu.Lock()
		if len(p.rejections) > 0 {
			ps.Rejections = make(map[string]int64, len(p.rejections))
			for k, v := range p.rejections {
				ps.Rejections[k] = v
			}
		}
		p.mu.Unlock()
		rep.Phases = append(rep.Phases, ps)
	}
	rep.Ops = make(map[string]*OpStats, len(r.ops))
	for name, a := range r.ops {
		os := &OpStats{
			Attempts: a.attempts.Load(), OK: a.ok.Load(),
			TransportErrors: a.transport.Load(), Cancelled: a.cancelled.Load(), Retried: a.retried.Load(),
		}
		a.mu.Lock()
		if len(a.rejections) > 0 {
			os.Rejections = make(map[string]int64, len(a.rejections))
			for k, v := range a.rejections {
				os.Rejections[k] = v
			}
		}
		a.mu.Unlock()
		rep.Ops[name] = os
	}
	r.sampleMu.Lock()
	rep.Runtime = RuntimeStats{
		Samples: r.samples,
		First:   r.baseline,
		Last:    r.finalClient,
		Server:  r.srvBase,
		ServerE: r.srvFinal,
	}
	r.sampleMu.Unlock()
	rep.Violations = append(rep.Violations, r.vios...)
	if rep.Violations == nil {
		rep.Violations = []string{}
	}
}
