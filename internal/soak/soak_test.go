package soak

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/pkg/bwaclient"
)

// shortOptions is a soak sized for a unit test: small genome, few
// workers, about two seconds of load.
func shortOptions() Options {
	o := DefaultOptions()
	o.Duration = 1500 * time.Millisecond
	o.Workers = 3
	o.GenomeBP = 30000
	o.ReadLen = 80
	o.Threads = 2
	o.SLOp99 = 30 * time.Second // CI machines are slow; the SLO invariant has its own test path
	return o
}

// TestShortRunClean is the harness's own tier-1 gate: a short in-process
// soak must complete with zero violations and a well-formed report.
func TestShortRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run in -short mode")
	}
	rep, err := Run(context.Background(), shortOptions(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("clean run reported violations: %v", rep.Violations)
	}
	if len(rep.Phases) == 0 {
		t.Fatal("no phases recorded")
	}
	steady := rep.Phases[0]
	if steady.Name != "steady" || steady.Requests == 0 || steady.Reads == 0 {
		t.Fatalf("steady phase = %+v, want traffic in a phase named steady", steady)
	}
	for _, op := range []string{opSingle, opPaired, opSlow, opCancel, opOversize, opMalformed, opHealth, opMetrics} {
		if rep.Ops[op] == nil || rep.Ops[op].Attempts == 0 {
			t.Errorf("op %s never ran", op)
		}
	}
	if got := rep.Ops[opOversize].Rejections[bwaclient.CodeTooLarge]; got == 0 {
		t.Error("oversize op recorded no too_large rejections")
	}
	if got := rep.Ops[opMalformed].Rejections[bwaclient.CodeBadRequest]; got == 0 {
		t.Error("malformed op recorded no bad_request rejections")
	}
	if lat, ok := rep.ServerLatency["single"]; !ok || lat.Count == 0 {
		t.Error("no server-side single-request latency parsed from /v1/metrics")
	}

	// The report round-trips with the schema stamped.
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["schema"] != Schema {
		t.Fatalf("schema = %v, want %s", decoded["schema"], Schema)
	}
}

// TestGatewayShortRunClean runs the same short soak through the gateway
// topology: two in-process replicas behind an in-process bwagate. The
// workload, oracle, and invariants are unchanged — byte-identity through
// the gateway's scatter/merge is exactly what's under test — and the
// server-side latency must now parse from bwagate_* metrics.
func TestGatewayShortRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run in -short mode")
	}
	o := shortOptions()
	o.Topology = "gateway:2"
	rep, err := Run(context.Background(), o, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("clean gateway run reported violations: %v", rep.Violations)
	}
	if len(rep.Phases) == 0 {
		t.Fatal("no phases recorded")
	}
	steady := rep.Phases[0]
	if steady.Name != "gateway-steady" || steady.Requests == 0 {
		t.Fatalf("first phase = %+v, want traffic in a phase named gateway-steady", steady)
	}
	if rep.Config.Topology != "gateway:2" {
		t.Fatalf("report config topology = %q, want gateway:2", rep.Config.Topology)
	}
	if lat, ok := rep.ServerLatency["single"]; !ok || lat.Count == 0 {
		t.Error("no single-request latency parsed from the gateway's /v1/metrics")
	}
	if got := rep.Ops[opOversize].Rejections[bwaclient.CodeTooLarge]; got == 0 {
		t.Error("oversize op recorded no too_large rejections through the gateway")
	}
}

// TestDetectsCorruptTarget points the harness at a stub that answers
// every align request with the same canned SAM: byte-identity must fail
// for the success ops and the must-reject ops must be flagged as
// wrongly accepted — the run ends violated, not errored.
func TestDetectsCorruptTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run in -short mode")
	}
	mux := http.NewServeMux()
	sam := "stub\t4\t*\t0\t0\t*\t*\t0\t0\tA\t!\n"
	mux.HandleFunc("/v1/align", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, sam) })
	mux.HandleFunc("/v1/align/paired", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, sam) })
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "# stub exposition\n")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	o := shortOptions()
	o.Duration = time.Second
	o.Target = ts.URL
	o.Retries = 0
	rep, err := Run(context.Background(), o, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	var byteID, envelope bool
	for _, v := range rep.Violations {
		byteID = byteID || strings.HasPrefix(v, "byte-identity:")
		envelope = envelope || strings.HasPrefix(v, "error-envelope:")
	}
	if !byteID {
		t.Errorf("corrupt SAM not flagged as a byte-identity violation: %v", rep.Violations)
	}
	if !envelope {
		t.Errorf("accepted must-reject requests not flagged: %v", rep.Violations)
	}
	// A stub without bwaserve's histograms must not fabricate latency.
	if len(rep.ServerLatency) != 0 {
		t.Errorf("ServerLatency = %v from a stub without request histograms", rep.ServerLatency)
	}
}

// newTestRunner builds a runner skeleton sufficient for the
// classification unit tests.
func newTestRunner() *runner {
	r := &runner{
		o:        &Options{},
		ops:      map[string]*opAcc{"x": {rejections: make(map[string]int64)}},
		vioCount: make(map[string]int),
	}
	r.beginPhase("test")
	return r
}

func TestClassifyRejection(t *testing.T) {
	api := func(status int, code string) error {
		return fmt.Errorf("wrapped: %w", &bwaclient.APIError{StatusCode: status, Code: code})
	}
	cases := []struct {
		name       string
		err        error
		wantCode   string
		handled    bool
		violations int
		recordedAs string
	}{
		{"transport error", fmt.Errorf("connection refused"), "", false, 0, ""},
		{"expected code", api(413, bwaclient.CodeTooLarge), bwaclient.CodeTooLarge, true, 0, bwaclient.CodeTooLarge},
		{"overloaded stands in", api(429, bwaclient.CodeOverloaded), bwaclient.CodeTooLarge, true, 0, bwaclient.CodeOverloaded},
		{"draining stands in", api(503, bwaclient.CodeDraining), bwaclient.CodeTooLarge, true, 0, bwaclient.CodeDraining},
		{"wrong code", api(400, bwaclient.CodeBadRequest), bwaclient.CodeTooLarge, true, 1, bwaclient.CodeBadRequest},
		{"untyped envelope", api(503, ""), "", true, 1, "http_503"},
		{"no expectation", api(429, bwaclient.CodeOverloaded), "", true, 0, bwaclient.CodeOverloaded},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := newTestRunner()
			acc := r.ops["x"]
			handled := r.classifyRejection("x", acc, r.cur.Load(), c.err, c.wantCode)
			if handled != c.handled {
				t.Fatalf("handled = %v, want %v", handled, c.handled)
			}
			if len(r.vios) != c.violations {
				t.Fatalf("violations = %v, want %d", r.vios, c.violations)
			}
			if c.recordedAs != "" && acc.rejections[c.recordedAs] != 1 {
				t.Fatalf("rejections = %v, want 1 under %q", acc.rejections, c.recordedAs)
			}
		})
	}
}

// TestViolationCap: a persistent fault must not balloon the report.
func TestViolationCap(t *testing.T) {
	r := newTestRunner()
	for i := 0; i < 100; i++ {
		r.violate("byte-identity", "instance %d", i)
	}
	if len(r.vios) != maxViolationsPerKind {
		t.Fatalf("recorded %d violations, want cap %d", len(r.vios), maxViolationsPerKind)
	}
}

// TestQuantileParity locks the harness's exposition-side quantile math to
// obs.Histogram's: parsing the buckets a histogram writes and re-deriving
// quantiles must reproduce Quantile exactly — the SLO check judges the
// server by the same numbers a dashboard would show.
func TestQuantileParity(t *testing.T) {
	h := &obs.Histogram{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h.Observe(time.Duration(rng.Intn(2_000_000)) * time.Microsecond)
	}
	var buf bytes.Buffer
	if err := h.Write(&buf, "bwaserve_request_seconds", `kind="single"`); err != nil {
		t.Fatal(err)
	}
	d := parseBuckets(buf.String(), "bwaserve_request_seconds", `kind="single"`)
	if d == nil {
		t.Fatal("parseBuckets found nothing in the histogram's own exposition")
	}
	if d.total != h.Count() {
		t.Fatalf("parsed total %d, histogram count %d", d.total, h.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := h.Quantile(q)
		got := d.quantile(q)
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("q%.2f: exposition-side %v, histogram-side %v", q, got, want)
		}
	}
}

func TestParseBucketsAbsentFamily(t *testing.T) {
	if d := parseBuckets("# nothing here\n", "bwaserve_request_seconds", `kind="single"`); d != nil {
		t.Fatalf("parseBuckets fabricated %+v from empty exposition", d)
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"zero duration", func(o *Options) { o.Duration = 0 }},
		{"zero workers", func(o *Options) { o.Workers = 0 }},
		{"unknown chaos", func(o *Options) { o.Chaos = "netsplit" }},
		{"chaos with target", func(o *Options) { o.Chaos = "kill-restart"; o.Target = "http://x" }},
		{"request cap over budget", func(o *Options) { o.MaxRequestReads = o.MaxInflight + 1 }},
		{"unknown topology", func(o *Options) { o.Topology = "mesh" }},
		{"zero-replica gateway", func(o *Options) { o.Topology = "gateway:0" }},
		{"gateway with target", func(o *Options) { o.Topology = "gateway:2"; o.Target = "http://x" }},
		{"gateway chaos with one replica", func(o *Options) { o.Topology = "gateway:1"; o.Chaos = "kill-restart" }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := DefaultOptions()
			c.mutate(&o)
			if err := o.validate(); err == nil {
				t.Fatal("validate accepted an invalid configuration")
			}
		})
	}
	o := DefaultOptions()
	if err := o.validate(); err != nil {
		t.Fatalf("defaults do not validate: %v", err)
	}
}

// TestFlagsREADMEDocDrift locks README.md's bwasoak flags table to the
// actual Flags registration, the same way the /metrics reference table is
// locked to the exposition.
func TestFlagsREADMEDocDrift(t *testing.T) {
	fs := flag.NewFlagSet("bwasoak", flag.ContinueOnError)
	Flags(fs)
	registered := make(map[string]bool)
	fs.VisitAll(func(f *flag.Flag) { registered[f.Name] = true })

	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	start := -1
	for i, l := range lines {
		if strings.HasPrefix(l, "## Soak & chaos testing") {
			start = i + 1
			break
		}
	}
	if start < 0 {
		t.Fatal("README.md has no 'Soak & chaos testing' section")
	}
	rowRe := regexp.MustCompile("^\\| `-([a-z0-9-]+)` \\|")
	documented := make(map[string]bool)
	for _, l := range lines[start:] {
		if strings.HasPrefix(l, "## ") {
			break
		}
		if m := rowRe.FindStringSubmatch(l); m != nil {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("found no flag rows in README.md's bwasoak section — did the table move?")
	}
	for name := range registered {
		if !documented[name] {
			t.Errorf("bwasoak -%s is registered but missing from README.md's flags table", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("README.md documents bwasoak -%s but Flags does not register it", name)
		}
	}
}
