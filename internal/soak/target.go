package soak

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/pkg/bwamem"
)

// localServer is the in-process target: pkg/bwamem.NewServer behind a
// real TCP listener, so the soak exercises the same HTTP surface CI and
// production see, without a subprocess.
type localServer struct {
	baseURL string
	srv     *bwamem.Server
	hs      *http.Server
	ln      net.Listener

	stopOnce sync.Once
}

func startLocalServer(o *Options, idx *bwamem.Index, logf func(string, ...any)) (*localServer, error) {
	aln, err := bwamem.New(idx)
	if err != nil {
		return nil, err
	}
	srv, err := bwamem.NewServer(aln, bwamem.ServerConfig{
		Threads:            o.Threads,
		BatchSize:          o.BatchSize,
		MaxInFlightReads:   o.MaxInflight,
		MaxReadsPerRequest: o.MaxRequestReads,
		MaxReadLen:         o.MaxReadLen,
		CacheEnabled:       true,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	ls := &localServer{
		baseURL: "http://" + ln.Addr().String(),
		srv:     srv,
		hs:      &http.Server{Handler: srv.Handler()},
		ln:      ln,
	}
	go ls.hs.Serve(ln)
	logf("soak: in-process server on %s (threads=%d batch=%d max-inflight=%d)",
		ls.baseURL, o.Threads, o.BatchSize, o.MaxInflight)
	return ls, nil
}

// drain is the clean-shutdown invariant: graceful Shutdown must complete
// within the drain window once load has stopped.
func (ls *localServer) drain() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ls.hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http server shutdown: %w", err)
	}
	if err := ls.srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("graceful drain: %w", err)
	}
	ls.stopOnce.Do(func() {}) // drained: stop() has nothing left to do
	return nil
}

func (ls *localServer) stop() {
	ls.stopOnce.Do(func() {
		ls.hs.Close()
		ls.srv.Close()
	})
}

// childServer is the chaos target: a real bwaserve process this harness
// can SIGKILL mid-traffic and restart on the same port.
type childServer struct {
	o    *Options
	logf func(string, ...any)

	bin     string
	binDir  string // temp dir when we built the binary ourselves
	addr    string
	baseURL string

	mu     sync.Mutex
	cmd    *exec.Cmd
	stderr *bytes.Buffer
}

// resolveServerBin returns the bwaserve binary a chaos target spawns:
// o.ServerBin when set, otherwise a fresh build of ./cmd/bwaserve into a
// temp dir (run from the module root). binDir is non-empty only when the
// build happened here; the caller owns its removal.
func resolveServerBin(ctx context.Context, o *Options, logf func(string, ...any)) (bin, binDir string, err error) {
	if o.ServerBin != "" {
		return o.ServerBin, "", nil
	}
	dir, err := os.MkdirTemp("", "bwasoak-*")
	if err != nil {
		return "", "", err
	}
	bin = filepath.Join(dir, "bwaserve")
	logf("soak: building bwaserve for chaos mode")
	cmd := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/bwaserve")
	if out, err := cmd.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		return "", "", fmt.Errorf("soak: building bwaserve (run from the module root or pass -server-bin): %v\n%s", err, out)
	}
	return bin, dir, nil
}

// startChildServer resolves the bwaserve binary, reserves a port, spawns
// the process, and waits for /v1/healthz.
func startChildServer(ctx context.Context, o *Options, logf func(string, ...any)) (*childServer, error) {
	bin, binDir, err := resolveServerBin(ctx, o, logf)
	if err != nil {
		return nil, err
	}
	return launchChild(ctx, o, bin, binDir, logf)
}

// launchChild spawns one bwaserve process from bin on a fresh port and
// waits for it to become healthy. The child owns binDir (removed on stop);
// pass "" when the binary is shared.
func launchChild(ctx context.Context, o *Options, bin, binDir string, logf func(string, ...any)) (*childServer, error) {
	c := &childServer{o: o, logf: logf, bin: bin, binDir: binDir}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.cleanup()
		return nil, err
	}
	c.addr = ln.Addr().String()
	c.baseURL = "http://" + c.addr
	ln.Close() // free it for the child; the window for a steal is tiny and a steal fails loudly
	if err := c.spawn(); err != nil {
		c.cleanup()
		return nil, err
	}
	if err := c.waitHealthy(ctx, 60*time.Second); err != nil {
		c.stop()
		return nil, fmt.Errorf("soak: bwaserve never became healthy: %w", err)
	}
	logf("soak: bwaserve subprocess on %s (pid %d)", c.baseURL, c.pid())
	return c, nil
}

func (c *childServer) spawn() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stderr = &bytes.Buffer{}
	cmd := exec.Command(c.bin,
		"-addr", c.addr,
		"-synthetic", strconv.Itoa(c.o.GenomeBP),
		"-seed", strconv.FormatInt(c.o.GenomeSeed, 10),
		"-t", strconv.Itoa(c.o.Threads),
		"-batch", strconv.Itoa(c.o.BatchSize),
		"-max-inflight", strconv.Itoa(c.o.MaxInflight),
		"-max-request-reads", strconv.Itoa(c.o.MaxRequestReads),
		"-max-read-len", strconv.Itoa(c.o.MaxReadLen),
	)
	cmd.Stdout = c.stderr
	cmd.Stderr = c.stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("soak: starting %s: %w", c.bin, err)
	}
	c.cmd = cmd
	return nil
}

func (c *childServer) pid() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cmd == nil || c.cmd.Process == nil {
		return 0
	}
	return c.cmd.Process.Pid
}

// waitHealthy polls /v1/healthz until the child answers 200.
func (c *childServer) waitHealthy(ctx context.Context, timeout time.Duration) error {
	hc := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := hc.Get(c.baseURL + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			c.mu.Lock()
			tail := c.stderr.String()
			c.mu.Unlock()
			if len(tail) > 2048 {
				tail = tail[len(tail)-2048:]
			}
			if err == nil {
				err = fmt.Errorf("healthz not OK")
			}
			return fmt.Errorf("%v; server output:\n%s", err, tail)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// kill is the chaos event: SIGKILL, no warning, mid-traffic.
func (c *childServer) kill() error {
	c.mu.Lock()
	cmd := c.cmd
	c.cmd = nil
	c.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("no running server process")
	}
	if err := cmd.Process.Kill(); err != nil {
		return err
	}
	cmd.Wait() // reap; a SIGKILL exit status is the expected outcome here
	return nil
}

// restart brings the killed server back on the same port and waits for
// it to pass health checks.
func (c *childServer) restart(ctx context.Context) error {
	if err := c.spawn(); err != nil {
		return err
	}
	return c.waitHealthy(ctx, 60*time.Second)
}

// drain asks the child to shut down gracefully (SIGTERM) and requires a
// clean exit within the drain window.
func (c *childServer) drain() error {
	c.mu.Lock()
	cmd := c.cmd
	c.cmd = nil
	c.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("no running server process to drain")
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("bwaserve exited uncleanly on SIGTERM: %w", err)
		}
		return nil
	case <-time.After(45 * time.Second):
		cmd.Process.Kill()
		<-done
		return fmt.Errorf("bwaserve did not exit within 45s of SIGTERM")
	}
}

func (c *childServer) stop() {
	c.mu.Lock()
	cmd := c.cmd
	c.cmd = nil
	c.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
		cmd.Wait()
	}
	c.cleanup()
}

func (c *childServer) cleanup() {
	if c.binDir != "" {
		os.RemoveAll(c.binDir)
		c.binDir = ""
	}
}

// gatewayTarget is the fleet topology: N replicas behind an in-process
// bwagate. Without chaos the replicas are in-process bwamem servers (no
// subprocess, CI-friendly); with kill-restart chaos they are real
// bwaserve processes sharing one built binary, so a SIGKILL hits a
// replica while the gateway — not the client — rides through it.
type gatewayTarget struct {
	baseURL  string
	gw       *gateway.Gateway
	hs       *http.Server
	ln       net.Listener
	locals   []*localServer
	children []*childServer
	binDir   string // shared bwaserve binary dir (chaos mode, built here)

	stopOnce sync.Once
}

func startGatewayTarget(ctx context.Context, o *Options, n int, idx *bwamem.Index, logf func(string, ...any)) (*gatewayTarget, error) {
	gt := &gatewayTarget{}
	urls := make([]string, 0, n)
	if o.Chaos != "" {
		bin, binDir, err := resolveServerBin(ctx, o, logf)
		if err != nil {
			return nil, err
		}
		gt.binDir = binDir
		for i := 0; i < n; i++ {
			c, err := launchChild(ctx, o, bin, "", logf)
			if err != nil {
				gt.stop()
				return nil, err
			}
			gt.children = append(gt.children, c)
			urls = append(urls, c.baseURL)
		}
	} else {
		for i := 0; i < n; i++ {
			ls, err := startLocalServer(o, idx, logf)
			if err != nil {
				gt.stop()
				return nil, err
			}
			gt.locals = append(gt.locals, ls)
			urls = append(urls, ls.baseURL)
		}
	}
	gw, err := gateway.New(gateway.Config{
		Replicas:           urls,
		ProbeInterval:      200 * time.Millisecond, // re-add restarted replicas well within a chaos window
		FailAfter:          2,
		MaxReadsPerRequest: o.MaxRequestReads,
		MaxReadLen:         o.MaxReadLen,
	})
	if err != nil {
		gt.stop()
		return nil, err
	}
	gt.gw = gw
	gw.SetLogf(logf)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		gt.stop()
		return nil, err
	}
	gt.ln = ln
	gt.baseURL = "http://" + ln.Addr().String()
	gt.hs = &http.Server{Handler: gw}
	go gt.hs.Serve(ln)
	logf("soak: gateway on %s over %d replicas (chaos=%q)", gt.baseURL, n, o.Chaos)
	return gt, nil
}

// drain shuts the tier down front to back: the gateway drains first (its
// in-flight fan-outs finish against live replicas), then each replica.
func (gt *gatewayTarget) drain() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var firstErr error
	if err := gt.gw.Shutdown(ctx); err != nil {
		firstErr = fmt.Errorf("gateway drain: %w", err)
	}
	if err := gt.hs.Shutdown(ctx); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("gateway http shutdown: %w", err)
	}
	for _, ls := range gt.locals {
		if err := ls.drain(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("replica: %w", err)
		}
	}
	for i, c := range gt.children {
		if err := c.drain(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("replica %d: %w", i, err)
		}
	}
	if firstErr == nil {
		gt.stopOnce.Do(func() {}) // drained: stop() has nothing left to do
	}
	return firstErr
}

func (gt *gatewayTarget) stop() {
	gt.stopOnce.Do(func() {
		if gt.hs != nil {
			gt.hs.Close()
		}
		if gt.gw != nil {
			gt.gw.Close()
		}
		for _, ls := range gt.locals {
			ls.stop()
		}
		for _, c := range gt.children {
			c.stop()
		}
	})
	if gt.binDir != "" {
		os.RemoveAll(gt.binDir)
		gt.binDir = ""
	}
}

// chaosGateway is the fleet kill-restart controller: every ChaosInterval
// it SIGKILLs one replica (round-robin), restarts it, and waits for
// health. Unlike single-server chaos, clients keep talking to the gateway
// throughout — the invariant under test is that the gateway's passive
// failure detection plus partition retry absorb the kill with zero
// client-visible failures.
func (r *runner) chaosGateway(ctx context.Context, gt *gatewayTarget, deadline time.Time) {
	for i := 1; ; i++ {
		t := time.NewTimer(r.o.ChaosInterval)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		if time.Until(deadline) < r.o.ChaosInterval/2+2*time.Second {
			return
		}
		victim := gt.children[(i-1)%len(gt.children)]
		r.logf("soak: gateway chaos %d: SIGKILL replica %s (pid %d)", i, victim.baseURL, victim.pid())
		r.beginPhase(fmt.Sprintf("chaos-%d", i))
		if err := victim.kill(); err != nil {
			r.violate("chaos-restart", "kill replica: %v", err)
			return
		}
		if err := victim.restart(ctx); err != nil {
			if ctx.Err() == nil {
				r.violate("chaos-restart", "restart replica: %v", err)
			}
			return
		}
		r.logf("soak: gateway chaos %d: replica back as pid %d", i, victim.pid())
		r.beginPhase(fmt.Sprintf("steady-%d", i))
	}
}

// chaos is the kill-restart controller: every ChaosInterval it opens a
// chaos phase, SIGKILLs the child mid-traffic, restarts it on the same
// port, waits for health, and opens the next steady phase. Workers keep
// running throughout — their transport retries are the client-resilience
// path under test.
func (r *runner) chaos(ctx context.Context, child *childServer, deadline time.Time) {
	for i := 1; ; i++ {
		t := time.NewTimer(r.o.ChaosInterval)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		// Leave room for recovery and a post-chaos steady window before
		// the run's deadline.
		if time.Until(deadline) < r.o.ChaosInterval/2+2*time.Second {
			return
		}
		r.logf("soak: chaos %d: SIGKILL pid %d", i, child.pid())
		r.beginPhase(fmt.Sprintf("chaos-%d", i))
		if err := child.kill(); err != nil {
			r.violate("chaos-restart", "kill: %v", err)
			return
		}
		if err := child.restart(ctx); err != nil {
			if ctx.Err() == nil {
				r.violate("chaos-restart", "restart: %v", err)
			}
			return
		}
		r.logf("soak: chaos %d: restarted as pid %d", i, child.pid())
		r.beginPhase(fmt.Sprintf("steady-%d", i))
	}
}
