package soak

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/pkg/bwamem"
)

// localServer is the in-process target: pkg/bwamem.NewServer behind a
// real TCP listener, so the soak exercises the same HTTP surface CI and
// production see, without a subprocess.
type localServer struct {
	baseURL string
	srv     *bwamem.Server
	hs      *http.Server
	ln      net.Listener

	stopOnce sync.Once
}

func startLocalServer(o *Options, idx *bwamem.Index, logf func(string, ...any)) (*localServer, error) {
	aln, err := bwamem.New(idx)
	if err != nil {
		return nil, err
	}
	srv, err := bwamem.NewServer(aln, bwamem.ServerConfig{
		Threads:            o.Threads,
		BatchSize:          o.BatchSize,
		MaxInFlightReads:   o.MaxInflight,
		MaxReadsPerRequest: o.MaxRequestReads,
		MaxReadLen:         o.MaxReadLen,
		CacheEnabled:       true,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	ls := &localServer{
		baseURL: "http://" + ln.Addr().String(),
		srv:     srv,
		hs:      &http.Server{Handler: srv.Handler()},
		ln:      ln,
	}
	go ls.hs.Serve(ln)
	logf("soak: in-process server on %s (threads=%d batch=%d max-inflight=%d)",
		ls.baseURL, o.Threads, o.BatchSize, o.MaxInflight)
	return ls, nil
}

// drain is the clean-shutdown invariant: graceful Shutdown must complete
// within the drain window once load has stopped.
func (ls *localServer) drain() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ls.hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http server shutdown: %w", err)
	}
	if err := ls.srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("graceful drain: %w", err)
	}
	ls.stopOnce.Do(func() {}) // drained: stop() has nothing left to do
	return nil
}

func (ls *localServer) stop() {
	ls.stopOnce.Do(func() {
		ls.hs.Close()
		ls.srv.Close()
	})
}

// childServer is the chaos target: a real bwaserve process this harness
// can SIGKILL mid-traffic and restart on the same port.
type childServer struct {
	o    *Options
	logf func(string, ...any)

	bin     string
	binDir  string // temp dir when we built the binary ourselves
	addr    string
	baseURL string

	mu     sync.Mutex
	cmd    *exec.Cmd
	stderr *bytes.Buffer
}

// startChildServer resolves the bwaserve binary (building it from
// ./cmd/bwaserve when -server-bin is empty, so run from the module root),
// reserves a port, spawns the process, and waits for /v1/healthz.
func startChildServer(ctx context.Context, o *Options, logf func(string, ...any)) (*childServer, error) {
	c := &childServer{o: o, logf: logf, bin: o.ServerBin}
	if c.bin == "" {
		dir, err := os.MkdirTemp("", "bwasoak-*")
		if err != nil {
			return nil, err
		}
		c.binDir = dir
		c.bin = filepath.Join(dir, "bwaserve")
		logf("soak: building bwaserve for chaos mode")
		cmd := exec.CommandContext(ctx, "go", "build", "-o", c.bin, "./cmd/bwaserve")
		if out, err := cmd.CombinedOutput(); err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("soak: building bwaserve (run from the module root or pass -server-bin): %v\n%s", err, out)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.cleanup()
		return nil, err
	}
	c.addr = ln.Addr().String()
	c.baseURL = "http://" + c.addr
	ln.Close() // free it for the child; the window for a steal is tiny and a steal fails loudly
	if err := c.spawn(); err != nil {
		c.cleanup()
		return nil, err
	}
	if err := c.waitHealthy(ctx, 60*time.Second); err != nil {
		c.stop()
		return nil, fmt.Errorf("soak: bwaserve never became healthy: %w", err)
	}
	logf("soak: bwaserve subprocess on %s (pid %d)", c.baseURL, c.pid())
	return c, nil
}

func (c *childServer) spawn() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stderr = &bytes.Buffer{}
	cmd := exec.Command(c.bin,
		"-addr", c.addr,
		"-synthetic", strconv.Itoa(c.o.GenomeBP),
		"-seed", strconv.FormatInt(c.o.GenomeSeed, 10),
		"-t", strconv.Itoa(c.o.Threads),
		"-batch", strconv.Itoa(c.o.BatchSize),
		"-max-inflight", strconv.Itoa(c.o.MaxInflight),
		"-max-request-reads", strconv.Itoa(c.o.MaxRequestReads),
		"-max-read-len", strconv.Itoa(c.o.MaxReadLen),
	)
	cmd.Stdout = c.stderr
	cmd.Stderr = c.stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("soak: starting %s: %w", c.bin, err)
	}
	c.cmd = cmd
	return nil
}

func (c *childServer) pid() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cmd == nil || c.cmd.Process == nil {
		return 0
	}
	return c.cmd.Process.Pid
}

// waitHealthy polls /v1/healthz until the child answers 200.
func (c *childServer) waitHealthy(ctx context.Context, timeout time.Duration) error {
	hc := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := hc.Get(c.baseURL + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			c.mu.Lock()
			tail := c.stderr.String()
			c.mu.Unlock()
			if len(tail) > 2048 {
				tail = tail[len(tail)-2048:]
			}
			if err == nil {
				err = fmt.Errorf("healthz not OK")
			}
			return fmt.Errorf("%v; server output:\n%s", err, tail)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// kill is the chaos event: SIGKILL, no warning, mid-traffic.
func (c *childServer) kill() error {
	c.mu.Lock()
	cmd := c.cmd
	c.cmd = nil
	c.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("no running server process")
	}
	if err := cmd.Process.Kill(); err != nil {
		return err
	}
	cmd.Wait() // reap; a SIGKILL exit status is the expected outcome here
	return nil
}

// restart brings the killed server back on the same port and waits for
// it to pass health checks.
func (c *childServer) restart(ctx context.Context) error {
	if err := c.spawn(); err != nil {
		return err
	}
	return c.waitHealthy(ctx, 60*time.Second)
}

// drain asks the child to shut down gracefully (SIGTERM) and requires a
// clean exit within the drain window.
func (c *childServer) drain() error {
	c.mu.Lock()
	cmd := c.cmd
	c.cmd = nil
	c.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("no running server process to drain")
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("bwaserve exited uncleanly on SIGTERM: %w", err)
		}
		return nil
	case <-time.After(45 * time.Second):
		cmd.Process.Kill()
		<-done
		return fmt.Errorf("bwaserve did not exit within 45s of SIGTERM")
	}
}

func (c *childServer) stop() {
	c.mu.Lock()
	cmd := c.cmd
	c.cmd = nil
	c.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
		cmd.Wait()
	}
	c.cleanup()
}

func (c *childServer) cleanup() {
	if c.binDir != "" {
		os.RemoveAll(c.binDir)
		c.binDir = ""
	}
}

// chaos is the kill-restart controller: every ChaosInterval it opens a
// chaos phase, SIGKILLs the child mid-traffic, restarts it on the same
// port, waits for health, and opens the next steady phase. Workers keep
// running throughout — their transport retries are the client-resilience
// path under test.
func (r *runner) chaos(ctx context.Context, child *childServer, deadline time.Time) {
	for i := 1; ; i++ {
		t := time.NewTimer(r.o.ChaosInterval)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		// Leave room for recovery and a post-chaos steady window before
		// the run's deadline.
		if time.Until(deadline) < r.o.ChaosInterval/2+2*time.Second {
			return
		}
		r.logf("soak: chaos %d: SIGKILL pid %d", i, child.pid())
		r.beginPhase(fmt.Sprintf("chaos-%d", i))
		if err := child.kill(); err != nil {
			r.violate("chaos-restart", "kill: %v", err)
			return
		}
		if err := child.restart(ctx); err != nil {
			if ctx.Err() == nil {
				r.violate("chaos-restart", "restart: %v", err)
			}
			return
		}
		r.logf("soak: chaos %d: restarted as pid %d", i, child.pid())
		r.beginPhase(fmt.Sprintf("steady-%d", i))
	}
}
