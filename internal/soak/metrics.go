package soak

import (
	"fmt"
	"regexp"
	"strconv"
)

// Exposition parsing: the soak harness reads the target's /v1/metrics the
// way a dashboard would — histogram buckets for quantiles, gauges for
// runtime growth — so the invariants it asserts are exactly the numbers
// an operator sees.

// bucketDist is one parsed Prometheus histogram: ascending finite upper
// bounds with their cumulative counts, plus the +Inf cumulative total.
type bucketDist struct {
	bounds []float64
	counts []int64
	total  int64 // cumulative count at le="+Inf"
}

// parseBuckets extracts the <family>_bucket series carrying the given
// rendered label list (e.g. `kind="single"`) from exposition text. Returns
// nil when the family/label combination is absent.
func parseBuckets(text, family, labels string) *bucketDist {
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(family+"_bucket{"+labels+",le=") +
		`"([^"]+)"\} (\d+)$`)
	var d bucketDist
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		if m[1] == "+Inf" {
			d.total = n
			continue
		}
		ub, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			continue
		}
		d.bounds = append(d.bounds, ub)
		d.counts = append(d.counts, n)
	}
	if len(d.bounds) == 0 {
		return nil
	}
	return &d
}

// quantile estimates the q-th quantile in seconds with the same
// piecewise-linear interpolation Prometheus's histogram_quantile applies
// (and obs.Histogram.Quantile mirrors): observations beyond the last
// finite bound clamp to that bound. Returns 0 for an empty histogram.
func (d *bucketDist) quantile(q float64) float64 {
	if d == nil || d.total == 0 {
		return 0
	}
	rank := q * float64(d.total)
	prev := int64(0)
	for i, cum := range d.counts {
		if cum == prev {
			continue
		}
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = d.bounds[i-1]
			}
			return lower + (d.bounds[i]-lower)*(rank-float64(prev))/float64(cum-prev)
		}
		prev = cum
	}
	return d.bounds[len(d.bounds)-1]
}

// quantiles summarizes one parsed distribution.
func (d *bucketDist) quantiles() Quantiles {
	if d == nil {
		return Quantiles{}
	}
	return Quantiles{
		Count: d.total,
		P50:   d.quantile(0.50),
		P90:   d.quantile(0.90),
		P99:   d.quantile(0.99),
	}
}

// scrapeGauge pulls one un-labelled numeric series from exposition text.
func scrapeGauge(text, name string) (float64, bool) {
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9eE+.-]+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		return 0, false
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// metricPrefixes are the exposition prefixes a soak target can answer
// with: bwaserve_* from a replica, bwagate_* when the target is the
// gateway tier. Both expose the same histogram and runtime-gauge shapes.
var metricPrefixes = []string{"bwaserve", "bwagate"}

// serverRuntimeSample reads the target's runtime gauges from exposition
// text; ok is false when the target does not expose them (e.g. a stub).
func serverRuntimeSample(text string) (RuntimeSample, bool) {
	for _, prefix := range metricPrefixes {
		g, okG := scrapeGauge(text, prefix+"_go_goroutines")
		h, okH := scrapeGauge(text, prefix+"_go_heap_alloc_bytes")
		if okG && okH {
			return RuntimeSample{Goroutines: int(g), HeapAllocBytes: h}, true
		}
	}
	return RuntimeSample{}, false
}

// requestLatency parses the target's request_seconds histograms for the
// align request kinds out of exposition text.
func requestLatency(text string) map[string]Quantiles {
	out := make(map[string]Quantiles)
	for _, kind := range []string{"single", "paired"} {
		for _, prefix := range metricPrefixes {
			if d := parseBuckets(text, prefix+"_request_seconds", fmt.Sprintf("kind=%q", kind)); d != nil {
				out[kind] = d.quantiles()
				break
			}
		}
	}
	return out
}
