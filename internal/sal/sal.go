// Package sal implements the suffix-array lookup (SAL) kernel, the second of
// the paper's three hot kernels: converting SA-interval rows produced by
// SMEM seeding into reference coordinates.
//
// Two designs are provided, matching §4.5 of the paper:
//
//   - CompressedSA is original BWA-MEM's design: only every intv-th entry of
//     the suffix array is stored; the rest are recovered by walking the LF
//     mapping until a sampled row is hit. Each walk step costs an
//     occurrence-table access, which is why the paper measures ~5,190
//     instructions per lookup at compression factor 128.
//
//   - FlatSA is the paper's optimization: the uncompressed suffix array,
//     answering every lookup with a single array read (Equation 1). It
//     trades memory (about 48 GB for a human genome in the paper; megabytes
//     at this reproduction's scale) for a ~183x kernel speedup.
package sal

import (
	"fmt"

	"repro/internal/fmindex"
	"repro/internal/trace"
)

// DefaultCompression is the compression factor the paper attributes to
// BWA-MEM (§4.5).
const DefaultCompression = 128

// Lookuper answers suffix-array queries: the reference coordinate of a
// full-matrix row. Both kernel designs implement it.
type Lookuper interface {
	Lookup(row int) int
	MemFootprint() int
}

// FlatSA is the optimized, uncompressed suffix array (Equation 1).
type FlatSA struct {
	sa []int32
	tr *trace.Tracer
}

// NewFlat wraps a full-matrix suffix array (N+1 entries, row 0 = sentinel).
// The slice is borrowed, never written: it may alias read-only memory such
// as an mmap'd index section, and one slice may back any number of FlatSA
// values across goroutines.
func NewFlat(fullSA []int32) *FlatSA {
	return &FlatSA{sa: fullSA}
}

// SetTracer installs (or removes) instrumentation.
func (f *FlatSA) SetTracer(tr *trace.Tracer) { f.tr = tr }

// Lookup returns the text position of the suffix at row: one array read.
func (f *FlatSA) Lookup(row int) int {
	if f.tr != nil {
		f.tr.SALookups++
		f.tr.Load(trace.SABase+uint64(row)*4, 4)
	}
	return int(f.sa[row])
}

// MemFootprint returns the table size in bytes.
func (f *FlatSA) MemFootprint() int { return 4 * len(f.sa) }

// CompressedSA is the baseline sampled suffix array.
type CompressedSA struct {
	intv    int
	samples []int32
	rows    int // N+1
	idx     *fmindex.Index
	tr      *trace.Tracer
}

// NewCompressed samples every intv-th row of the full suffix array. The
// index provides the LF mapping used to recover unsampled rows; it must be
// the index of the same text.
func NewCompressed(fullSA []int32, intv int, idx *fmindex.Index) (*CompressedSA, error) {
	if intv < 1 {
		return nil, fmt.Errorf("sal: compression interval %d < 1", intv)
	}
	c := &CompressedSA{intv: intv, rows: len(fullSA), idx: idx}
	c.samples = make([]int32, (len(fullSA)+intv-1)/intv)
	for i := range c.samples {
		c.samples[i] = fullSA[i*intv]
	}
	return c, nil
}

// SetTracer installs (or removes) instrumentation. LF-mapping steps also hit
// the occurrence table, so for complete memory traces install the same
// tracer on the underlying fmindex.Index.
func (c *CompressedSA) SetTracer(tr *trace.Tracer) { c.tr = tr }

// Lookup recovers the text position of the suffix at row by LF-walking to
// the nearest sampled row (BWA's bwt_sa). Walks that cross the primary row
// wrap through the sentinel, handled by the modular correction.
func (c *CompressedSA) Lookup(row int) int {
	if c.tr != nil {
		c.tr.SALookups++
	}
	steps := 0
	for row%c.intv != 0 {
		row = c.idx.LF(row)
		steps++
		if c.tr != nil {
			c.tr.LFSteps++
		}
	}
	if c.tr != nil {
		c.tr.Load(trace.SABase+uint64(row/c.intv)*4, 4)
	}
	v := int(c.samples[row/c.intv]) + steps
	if v >= c.rows {
		v -= c.rows
	}
	return v
}

// MemFootprint returns the table size in bytes.
func (c *CompressedSA) MemFootprint() int { return 4 * len(c.samples) }

// Interval returns the compression factor.
func (c *CompressedSA) Interval() int { return c.intv }
