package sal

import (
	"math/rand"
	"testing"

	"repro/internal/fmindex"
	"repro/internal/memsim"
	"repro/internal/seq"
	"repro/internal/trace"
)

func buildIndex(t testing.TB, n int, seed int64, flavor fmindex.Flavor) (*fmindex.Index, []int32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fwd := make([]byte, n)
	for i := range fwd {
		fwd[i] = "ACGT"[rng.Intn(4)]
	}
	ref, err := seq.NewReference([]string{"c"}, [][]byte{fwd})
	if err != nil {
		t.Fatal(err)
	}
	idx, full, err := fmindex.Build(ref.Doubled(), flavor)
	if err != nil {
		t.Fatal(err)
	}
	return idx, full
}

func TestFlatLookupAllRows(t *testing.T) {
	_, full := buildIndex(t, 300, 1, fmindex.Optimized)
	f := NewFlat(full)
	for row := range full {
		if got := f.Lookup(row); got != int(full[row]) {
			t.Fatalf("Lookup(%d) = %d, want %d", row, got, full[row])
		}
	}
	if f.MemFootprint() != 4*len(full) {
		t.Errorf("footprint = %d", f.MemFootprint())
	}
}

func TestCompressedLookupAllRowsAllIntervals(t *testing.T) {
	for _, flavor := range []fmindex.Flavor{fmindex.Baseline, fmindex.Optimized} {
		idx, full := buildIndex(t, 257, 2, flavor)
		for _, intv := range []int{1, 2, 3, 8, 32, 128, 1024} {
			c, err := NewCompressed(full, intv, idx)
			if err != nil {
				t.Fatal(err)
			}
			for row := range full {
				if got := c.Lookup(row); got != int(full[row]) {
					t.Fatalf("flavor %v intv %d: Lookup(%d) = %d, want %d",
						flavor, intv, row, got, full[row])
				}
			}
		}
	}
}

func TestCompressedRejectsBadInterval(t *testing.T) {
	idx, full := buildIndex(t, 64, 3, fmindex.Baseline)
	if _, err := NewCompressed(full, 0, idx); err == nil {
		t.Fatal("interval 0 should error")
	}
	if _, err := NewCompressed(full, -5, idx); err == nil {
		t.Fatal("negative interval should error")
	}
}

func TestCompressedFootprintShrinks(t *testing.T) {
	idx, full := buildIndex(t, 1024, 4, fmindex.Baseline)
	c32, _ := NewCompressed(full, 32, idx)
	c128, _ := NewCompressed(full, 128, idx)
	flat := NewFlat(full)
	if !(c128.MemFootprint() < c32.MemFootprint() && c32.MemFootprint() < flat.MemFootprint()) {
		t.Fatalf("footprints: flat=%d c32=%d c128=%d",
			flat.MemFootprint(), c32.MemFootprint(), c128.MemFootprint())
	}
	if c128.Interval() != 128 {
		t.Fatal("interval accessor")
	}
}

func TestLookupTracing(t *testing.T) {
	idx, full := buildIndex(t, 500, 5, fmindex.Baseline)
	tr := &trace.Tracer{Mem: memsim.New(memsim.Scaled())}
	c, _ := NewCompressed(full, 128, idx)
	c.SetTracer(tr)
	idx.SetTracer(tr)
	rows := []int{1, 17, 333, 777}
	for _, r := range rows {
		c.Lookup(r % len(full))
	}
	if tr.SALookups != int64(len(rows)) {
		t.Fatalf("SALookups = %d", tr.SALookups)
	}
	if tr.LFSteps == 0 {
		t.Fatal("compressed lookups should take LF steps")
	}
	if tr.OccCalls == 0 {
		t.Fatal("LF steps should hit the occurrence table")
	}
	lfLoads := tr.Mem.Stats.Loads
	if lfLoads == 0 {
		t.Fatal("cache model saw no loads")
	}

	// Flat lookups: exactly one load each, no LF steps.
	tr2 := &trace.Tracer{Mem: memsim.New(memsim.Scaled())}
	f := NewFlat(full)
	f.SetTracer(tr2)
	for _, r := range rows {
		f.Lookup(r % len(full))
	}
	if tr2.LFSteps != 0 || tr2.Mem.Stats.Loads != int64(len(rows)) {
		t.Fatalf("flat tracing: %+v", tr2)
	}
}

// TestInstructionGapEmerges verifies the core claim of Table 5: the work per
// lookup (LF steps, each costing an occurrence computation) of the
// compressed design is orders of magnitude above the flat design's single
// read, and grows with the compression factor.
func TestInstructionGapEmerges(t *testing.T) {
	idx, full := buildIndex(t, 4000, 6, fmindex.Baseline)
	rng := rand.New(rand.NewSource(7))
	rows := make([]int, 2000)
	for i := range rows {
		rows[i] = rng.Intn(len(full))
	}
	work := func(intv int) float64 {
		tr := &trace.Tracer{}
		c, _ := NewCompressed(full, intv, idx)
		c.SetTracer(tr)
		idx.SetTracer(tr)
		defer idx.SetTracer(nil)
		for _, r := range rows {
			c.Lookup(r)
		}
		return float64(tr.LFSteps) / float64(len(rows))
	}
	w32, w128 := work(32), work(128)
	// LF jumps to essentially random rows, so the walk length is geometric
	// with mean ~intv.
	if w32 < 10 || w32 > 64 {
		t.Fatalf("avg LF steps at intv 32 = %f, want ~32", w32)
	}
	if w128 < 48 || w128 > 256 {
		t.Fatalf("avg LF steps at intv 128 = %f, want ~128", w128)
	}
	if w128 < 2.5*w32 {
		t.Fatalf("walk length should scale with compression: %f vs %f", w32, w128)
	}
}

func BenchmarkSALCompressed128(b *testing.B) {
	idx, full := buildIndex(b, 1<<16, 8, fmindex.Baseline)
	c, _ := NewCompressed(full, 128, idx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(i % len(full))
	}
}

func BenchmarkSALFlat(b *testing.B) {
	_, full := buildIndex(b, 1<<16, 8, fmindex.Optimized)
	f := NewFlat(full)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Lookup(i % len(full))
	}
}
