// Package memsim is a trace-driven, multi-level cache-hierarchy simulator.
//
// The paper quantifies its SMEM and SAL improvements with hardware
// performance counters (LLC misses, average memory latency) on a Xeon
// Skylake. Pure Go has no access to such counters, and no software-prefetch
// instruction, so the reproduction replays the kernels' exact memory-access
// streams through this simulator instead: the index structures report the
// synthetic address of every occurrence-table bucket and suffix-array entry
// they touch, and memsim turns that stream into miss counts and an average
// access latency. Software prefetching (Algorithm 4, lines 11-12/26-27 of
// the paper) is modeled as an asynchronous fill that charges no demand
// latency.
package memsim

import "fmt"

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name    string
	Size    int // capacity in bytes
	Ways    int // associativity
	Latency int // hit latency in cycles
}

// Config describes a full hierarchy, ordered from the level closest to the
// core (L1) to the last-level cache.
type Config struct {
	LineSize   int // cache line size in bytes
	Levels     []LevelConfig
	MemLatency int // miss-everywhere latency in cycles
}

// Skylake returns a configuration resembling one core's view of the Intel
// Xeon Platinum 8180 used in the paper (Table 2): 32 KB L1D, 1 MB L2, and
// the 38.5 MB shared LLC.
func Skylake() Config {
	return Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{Name: "L1D", Size: 32 << 10, Ways: 8, Latency: 4},
			{Name: "L2", Size: 1 << 20, Ways: 16, Latency: 14},
			{Name: "LLC", Size: 38<<20 + 512<<10, Ways: 11, Latency: 50},
		},
		MemLatency: 200,
	}
}

// Scaled returns a hierarchy with the same structure as Skylake but capacities
// shrunk 16x, so that laptop-scale indexes (tens of MB instead of the paper's
// tens of GB) exhibit the same index-size-to-LLC-size ratio and therefore the
// same miss behaviour the paper measures.
func Scaled() Config {
	return Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{Name: "L1D", Size: 8 << 10, Ways: 8, Latency: 4},
			{Name: "L2", Size: 64 << 10, Ways: 16, Latency: 14},
			{Name: "LLC", Size: 2 << 20, Ways: 16, Latency: 50},
		},
		MemLatency: 200,
	}
}

// Stats accumulates the counters the paper reports.
type Stats struct {
	Loads      int64
	Stores     int64
	Prefetches int64
	// HitsAt[i] counts demand accesses served by level i; HitsMem counts
	// demand accesses served by memory (== misses in every cache level).
	HitsAt  []int64
	HitsMem int64
	// PrefetchFills counts prefetches that had to fetch from memory (the
	// useful ones; the rest were already cached).
	PrefetchFills int64
	TotalLatency  int64 // cycles across all demand accesses
}

// Accesses returns the number of demand accesses (loads + stores).
func (s *Stats) Accesses() int64 { return s.Loads + s.Stores }

// LLCMisses returns demand accesses that missed every cache level.
func (s *Stats) LLCMisses() int64 { return s.HitsMem }

// AvgLatency returns the mean demand-access latency in cycles.
func (s *Stats) AvgLatency() float64 {
	n := s.Accesses()
	if n == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(n)
}

type level struct {
	cfg     LevelConfig
	sets    int
	tags    []uint64 // sets*ways entries; 0 means empty
	ages    []uint64
	setMask uint64
}

// Hierarchy simulates a demand stream through the configured levels with LRU
// replacement and inclusive fills. It is not safe for concurrent use; give
// each worker its own Hierarchy.
type Hierarchy struct {
	cfg    Config
	levels []*level
	clock  uint64
	Stats  Stats
}

// New builds a Hierarchy from a configuration. It panics on invalid
// geometry (non-power-of-two line size, level smaller than one set).
func New(cfg Config) *Hierarchy {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("memsim: line size %d is not a positive power of two", cfg.LineSize))
	}
	h := &Hierarchy{cfg: cfg}
	for _, lc := range cfg.Levels {
		sets := lc.Size / (cfg.LineSize * lc.Ways)
		if sets <= 0 {
			panic(fmt.Sprintf("memsim: level %s too small for %d ways", lc.Name, lc.Ways))
		}
		// Round sets down to a power of two for mask indexing.
		p := 1
		for p*2 <= sets {
			p *= 2
		}
		l := &level{
			cfg:     lc,
			sets:    p,
			tags:    make([]uint64, p*lc.Ways),
			ages:    make([]uint64, p*lc.Ways),
			setMask: uint64(p - 1),
		}
		h.levels = append(h.levels, l)
	}
	h.Stats.HitsAt = make([]int64, len(cfg.Levels))
	return h
}

// lookup probes a level for a line number; on hit it refreshes LRU age.
func (l *level) lookup(line uint64, clock uint64) bool {
	set := int(line & l.setMask)
	base := set * l.cfg.Ways
	tag := line + 1 // +1 so that tag 0 means "empty"
	for w := 0; w < l.cfg.Ways; w++ {
		if l.tags[base+w] == tag {
			l.ages[base+w] = clock
			return true
		}
	}
	return false
}

// fill inserts a line, evicting the LRU way.
func (l *level) fill(line uint64, clock uint64) {
	set := int(line & l.setMask)
	base := set * l.cfg.Ways
	tag := line + 1
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < l.cfg.Ways; w++ {
		if l.tags[base+w] == tag {
			l.ages[base+w] = clock
			return
		}
		if l.ages[base+w] < oldest || l.tags[base+w] == 0 {
			if l.tags[base+w] == 0 {
				victim = w
				break
			}
			victim, oldest = w, l.ages[base+w]
		}
	}
	l.tags[base+victim] = tag
	l.ages[base+victim] = clock
}

// access walks the hierarchy for one line and returns the level index that
// served it (len(levels) means memory) after filling all missed levels.
func (h *Hierarchy) access(line uint64) int {
	h.clock++
	served := len(h.levels)
	for i, l := range h.levels {
		if l.lookup(line, h.clock) {
			served = i
			break
		}
	}
	for i := 0; i < served && i < len(h.levels); i++ {
		h.levels[i].fill(line, h.clock)
	}
	if served == len(h.levels) {
		for _, l := range h.levels {
			l.fill(line, h.clock)
		}
	}
	return served
}

// latencyOf maps a serving level index to cycles.
func (h *Hierarchy) latencyOf(served int) int {
	if served < len(h.levels) {
		return h.cfg.Levels[served].Latency
	}
	return h.cfg.MemLatency
}

// lines enumerates the cache lines covered by [addr, addr+size).
func (h *Hierarchy) lines(addr uint64, size int) (first, last uint64) {
	ls := uint64(h.cfg.LineSize)
	first = addr / ls
	if size <= 0 {
		size = 1
	}
	last = (addr + uint64(size) - 1) / ls
	return first, last
}

// Load simulates a demand read of [addr, addr+size).
func (h *Hierarchy) Load(addr uint64, size int) {
	h.Stats.Loads++
	h.demand(addr, size)
}

// Store simulates a demand write of [addr, addr+size) (write-allocate).
func (h *Hierarchy) Store(addr uint64, size int) {
	h.Stats.Stores++
	h.demand(addr, size)
}

func (h *Hierarchy) demand(addr uint64, size int) {
	first, last := h.lines(addr, size)
	worst := 0
	for line := first; line <= last; line++ {
		served := h.access(line)
		if served > worst {
			worst = served
		}
		if served < len(h.levels) {
			h.Stats.HitsAt[served]++
		} else {
			h.Stats.HitsMem++
		}
	}
	h.Stats.TotalLatency += int64(h.latencyOf(worst))
}

// PrefetchAddr simulates a software prefetch of the line containing addr: the
// line is brought into every level but no demand latency is charged, modeling
// a prefetch issued early enough to complete before the demand access.
func (h *Hierarchy) PrefetchAddr(addr uint64, size int) {
	h.Stats.Prefetches++
	first, last := h.lines(addr, size)
	for line := first; line <= last; line++ {
		if served := h.access(line); served == len(h.levels) {
			h.Stats.PrefetchFills++
		}
	}
}

// ResetStats clears the counters but keeps cache contents warm.
func (h *Hierarchy) ResetStats() {
	h.Stats = Stats{HitsAt: make([]int64, len(h.levels))}
}

// Reset clears the cache contents and counters.
func (h *Hierarchy) Reset() {
	for _, l := range h.levels {
		for i := range l.tags {
			l.tags[i] = 0
			l.ages[i] = 0
		}
	}
	h.Stats = Stats{HitsAt: make([]int64, len(h.levels))}
	h.clock = 0
}
