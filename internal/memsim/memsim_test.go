package memsim

import (
	"math/rand"
	"testing"
)

// tiny returns a single-level hierarchy: 4 sets x 2 ways x 64B lines = 512B.
func tiny() *Hierarchy {
	return New(Config{
		LineSize:   64,
		Levels:     []LevelConfig{{Name: "L1", Size: 512, Ways: 2, Latency: 4}},
		MemLatency: 100,
	})
}

func TestColdMissThenHit(t *testing.T) {
	h := tiny()
	h.Load(0, 8)
	if h.Stats.HitsMem != 1 || h.Stats.HitsAt[0] != 0 {
		t.Fatalf("first access should miss: %+v", h.Stats)
	}
	if h.Stats.TotalLatency != 100 {
		t.Fatalf("miss latency = %d, want 100", h.Stats.TotalLatency)
	}
	h.Load(8, 8) // same line
	if h.Stats.HitsAt[0] != 1 {
		t.Fatalf("second access should hit L1: %+v", h.Stats)
	}
	if h.Stats.TotalLatency != 104 {
		t.Fatalf("total latency = %d, want 104", h.Stats.TotalLatency)
	}
	if h.Stats.Loads != 2 || h.Stats.Accesses() != 2 {
		t.Fatalf("load count: %+v", h.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	h := tiny()                                         // 4 sets, 2 ways: lines mapping to set 0 are multiples of 4
	line := func(i uint64) uint64 { return i * 4 * 64 } // addresses in set 0
	h.Load(line(1), 1)
	h.Load(line(2), 1) // set 0 now holds lines 4,8
	h.Load(line(1), 1) // refresh line 4
	h.Load(line(3), 1) // evicts LRU = line 8
	h.Load(line(1), 1) // hit
	if h.Stats.HitsAt[0] != 2 {
		t.Fatalf("want 2 hits before eviction check: %+v", h.Stats)
	}
	h.Load(line(2), 1) // was evicted: miss
	if h.Stats.HitsMem != 4 {
		t.Fatalf("want 4 memory hits, got %+v", h.Stats)
	}
}

func TestMultiLineAccessCountsPerLine(t *testing.T) {
	h := tiny()
	h.Load(60, 8) // straddles two lines
	if h.Stats.HitsMem != 2 {
		t.Fatalf("straddling access should touch 2 lines: %+v", h.Stats)
	}
	// Latency charged once per access (worst level), not per line.
	if h.Stats.TotalLatency != 100 {
		t.Fatalf("latency = %d, want 100", h.Stats.TotalLatency)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	h := tiny()
	h.PrefetchAddr(0, 1)
	if h.Stats.Prefetches != 1 || h.Stats.PrefetchFills != 1 {
		t.Fatalf("prefetch stats: %+v", h.Stats)
	}
	h.Load(0, 1)
	if h.Stats.HitsAt[0] != 1 || h.Stats.HitsMem != 0 {
		t.Fatalf("load after prefetch should hit: %+v", h.Stats)
	}
	if h.Stats.AvgLatency() != 4 {
		t.Fatalf("avg latency = %f, want 4", h.Stats.AvgLatency())
	}
	// Prefetching an already-cached line is not a fill.
	h.PrefetchAddr(0, 1)
	if h.Stats.PrefetchFills != 1 {
		t.Fatalf("cached prefetch should not fill: %+v", h.Stats)
	}
}

func TestTwoLevelFill(t *testing.T) {
	h := New(Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{Name: "L1", Size: 128, Ways: 1, Latency: 4}, // 2 sets x 1 way
			{Name: "L2", Size: 1024, Ways: 2, Latency: 12},
		},
		MemLatency: 100,
	})
	h.Load(0, 1)    // memory
	h.Load(2*64, 1) // same L1 set (2 sets: line 0 and 2 both set 0): evicts line 0 from L1
	h.Load(0, 1)    // must hit L2
	if h.Stats.HitsAt[1] != 1 {
		t.Fatalf("want L2 hit: %+v", h.Stats)
	}
	if got := h.Stats.TotalLatency; got != 100+100+12 {
		t.Fatalf("latency = %d, want 212", got)
	}
	if h.Stats.LLCMisses() != 2 {
		t.Fatalf("LLC misses = %d, want 2", h.Stats.LLCMisses())
	}
}

func TestStoreCountsSeparately(t *testing.T) {
	h := tiny()
	h.Store(0, 8)
	h.Load(0, 8)
	if h.Stats.Stores != 1 || h.Stats.Loads != 1 {
		t.Fatalf("stats: %+v", h.Stats)
	}
	if h.Stats.HitsAt[0] != 1 {
		t.Fatal("load after store-allocate should hit")
	}
}

func TestReset(t *testing.T) {
	h := tiny()
	h.Load(0, 1)
	h.Reset()
	if h.Stats.Accesses() != 0 {
		t.Fatal("stats not cleared")
	}
	h.Load(0, 1)
	if h.Stats.HitsMem != 1 {
		t.Fatal("cache contents not cleared")
	}
}

func TestWorkingSetFitsVsExceeds(t *testing.T) {
	// A working set that fits in the cache has ~zero steady-state misses; one
	// that exceeds it keeps missing. This is the property Table 4 depends on.
	h := tiny() // 512 B
	rng := rand.New(rand.NewSource(1))
	// Fits: 8 lines ( = capacity).
	for i := 0; i < 10000; i++ {
		h.Load(uint64(rng.Intn(8))*64, 1)
	}
	small := h.Stats.HitsMem
	if small > 16 { // only cold misses expected (some conflict slack)
		t.Fatalf("fitting working set missed %d times", small)
	}
	h.Reset()
	for i := 0; i < 10000; i++ {
		h.Load(uint64(rng.Intn(1024))*64, 1)
	}
	if h.Stats.HitsMem < 5000 {
		t.Fatalf("oversized working set should mostly miss, got %d/10000", h.Stats.HitsMem)
	}
}

func TestConfigValidation(t *testing.T) {
	mustPanic := func(name string, cfg Config) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		New(cfg)
	}
	mustPanic("bad line", Config{LineSize: 60, Levels: []LevelConfig{{Size: 512, Ways: 2, Latency: 1}}})
	mustPanic("tiny level", Config{LineSize: 64, Levels: []LevelConfig{{Size: 64, Ways: 4, Latency: 1}}})
}

func TestPresetConfigs(t *testing.T) {
	for _, cfg := range []Config{Skylake(), Scaled()} {
		h := New(cfg)
		h.Load(123456, 4)
		if h.Stats.Accesses() != 1 {
			t.Fatal("preset config not usable")
		}
	}
}
