package trace

import (
	"testing"

	"repro/internal/memsim"
)

func TestTracerWithoutModel(t *testing.T) {
	tr := &Tracer{}
	tr.Load(100, 8)  // no cache model: must not panic
	tr.Store(200, 8) // likewise
	tr.Prefetch(0, 64)
	if tr.Prefetches != 1 {
		t.Fatalf("prefetch count: %+v", tr)
	}
}

func TestTracerDrivesModel(t *testing.T) {
	tr := &Tracer{Mem: memsim.New(memsim.Scaled())}
	tr.Load(OccBase, 64)
	tr.Store(SABase, 4)
	if tr.Mem.Stats.Loads != 1 || tr.Mem.Stats.Stores != 1 {
		t.Fatalf("model stats: %+v", tr.Mem.Stats)
	}
}

func TestPrefetchGating(t *testing.T) {
	// Prefetch hints count but only warm the model when enabled.
	tr := &Tracer{Mem: memsim.New(memsim.Scaled()), EnablePrefetch: false}
	tr.Prefetch(OccBase, 64)
	if tr.Prefetches != 1 || tr.Mem.Stats.Prefetches != 0 {
		t.Fatalf("disabled prefetch should not reach the model: %+v", tr.Mem.Stats)
	}
	tr.EnablePrefetch = true
	tr.Prefetch(OccBase, 64)
	if tr.Mem.Stats.Prefetches != 1 {
		t.Fatalf("enabled prefetch should reach the model: %+v", tr.Mem.Stats)
	}
	// The prefetched line now hits.
	tr.Load(OccBase, 8)
	if tr.Mem.Stats.HitsAt[0] != 1 {
		t.Fatalf("load after prefetch should hit L1: %+v", tr.Mem.Stats)
	}
}

func TestResetCountersKeepsCacheWarm(t *testing.T) {
	tr := &Tracer{Mem: memsim.New(memsim.Scaled())}
	tr.Load(OccBase, 8)
	tr.OccCalls = 5
	tr.ResetCounters()
	if tr.OccCalls != 0 || tr.Mem.Stats.Loads != 0 {
		t.Fatalf("counters not cleared: %+v %+v", tr, tr.Mem.Stats)
	}
	tr.Load(OccBase, 8)
	if tr.Mem.Stats.HitsAt[0] != 1 {
		t.Fatal("cache contents should survive ResetCounters")
	}
}

func TestAddressRegionsDistinct(t *testing.T) {
	regions := []uint64{OccBase, SABase, RefBase, BWTBase}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			if regions[i] == regions[j] {
				t.Fatal("address regions must be distinct")
			}
		}
	}
}
