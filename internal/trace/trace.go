// Package trace carries the instrumentation shared by the kernel
// reproductions: operation counters (the "# instructions"-style columns of
// the paper's Tables 4, 5 and 7 are derived from these) and an optional
// cache-hierarchy simulator that replays the kernels' memory-access streams
// (the LLC-miss and average-latency columns).
//
// A nil *Tracer disables all instrumentation; kernels guard every hook with
// a nil check so the fast paths stay fast.
package trace

import "repro/internal/memsim"

// Synthetic address-space bases for the simulated data structures. Each
// structure lives in its own region so streams interleave realistically in
// the cache model.
const (
	OccBase uint64 = 1 << 33
	SABase  uint64 = 2 << 33
	RefBase uint64 = 3 << 33
	BWTBase uint64 = 4 << 33
)

// Tracer accumulates operation counts and, when Mem is non-nil, drives the
// cache simulator. It is not safe for concurrent use; trace single-threaded
// kernel runs only.
type Tracer struct {
	Mem            *memsim.Hierarchy
	EnablePrefetch bool // honor software-prefetch hints (paper Alg. 4)

	// SMEM kernel counters.
	OccCalls   int64 // occurrence-table computations (one per bucket visit)
	OccWords   int64 // machine words scanned inside buckets
	OccBases   int64 // BWT symbol slots covered by those words
	Extends    int64 // backward/forward extension operations
	Prefetches int64 // software-prefetch hints issued

	// SAL kernel counters.
	SALookups int64 // suffix-array lookups requested
	LFSteps   int64 // LF-mapping walk steps (compressed SA only)
}

// Load records a demand read against the cache model (if any).
func (t *Tracer) Load(addr uint64, size int) {
	if t.Mem != nil {
		t.Mem.Load(addr, size)
	}
}

// Store records a demand write against the cache model (if any).
func (t *Tracer) Store(addr uint64, size int) {
	if t.Mem != nil {
		t.Mem.Store(addr, size)
	}
}

// Prefetch records a software-prefetch hint. Hints are counted even when the
// cache model is absent, and only warm the model when EnablePrefetch is set,
// so the same instrumented kernel serves both the "optimized" and "optimized
// minus software prefetching" configurations of Table 4.
func (t *Tracer) Prefetch(addr uint64, size int) {
	t.Prefetches++
	if t.EnablePrefetch && t.Mem != nil {
		t.Mem.PrefetchAddr(addr, size)
	}
}

// ResetCounters zeroes the counters but leaves cache contents warm.
func (t *Tracer) ResetCounters() {
	mem := t.Mem
	pf := t.EnablePrefetch
	*t = Tracer{Mem: mem, EnablePrefetch: pf}
	if mem != nil {
		mem.ResetStats()
	}
}
