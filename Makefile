GO ?= go
BWALINT := bin/bwalint

.PHONY: build test vet lint lint-fix lint-fix-dry bwalint bwalint-path race serve demo bench bench-record soak soak-gateway soak-record clean

SOAK_DURATION ?= 30s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bwalint: ## build the repo's own static analyzers (cmd/bwalint)
	$(GO) build -o $(BWALINT) ./cmd/bwalint

bwalint-path: bwalint ## print the built bwalint path (for go vet -vettool=$$(make -s bwalint-path))
	@echo $(CURDIR)/$(BWALINT)

lint: bwalint ## run the bwalint contract analyzers over the whole module (ratcheted against lint.baseline.json)
	$(GO) vet -vettool=$(CURDIR)/$(BWALINT) -baseline=$(CURDIR)/lint.baseline.json ./...

lint-fix: bwalint ## apply bwalint's mechanical SuggestedFixes in place
	$(CURDIR)/$(BWALINT) -baseline=$(CURDIR)/lint.baseline.json -fix ./...

lint-fix-dry: bwalint ## print bwalint's mechanical SuggestedFixes as a diff without applying
	$(CURDIR)/$(BWALINT) -baseline=$(CURDIR)/lint.baseline.json -diff ./... || true

race:
	$(GO) test -race ./...

serve: ## run the alignment server on a synthetic genome
	$(GO) run ./cmd/bwaserve -addr :8080 -synthetic 200000

demo: ## in-process client/server round trip
	$(GO) run ./examples/serverdemo

bench:
	$(GO) test -bench . -benchtime 1x ./...

bench-record: ## regenerate the committed kernel benchmark record
	$(GO) run ./cmd/kernelbench -json > BENCH_kernels.json

soak: ## sustained mixed-load run against an in-process server; fails on any violated invariant
	$(GO) run ./cmd/bwasoak -duration $(SOAK_DURATION) -seed 1 > /dev/null

soak-gateway: ## gateway-tier soak: 2 replicas behind bwagate, kill-restart chaos, zero retry budget
	$(GO) run ./cmd/bwasoak -duration $(SOAK_DURATION) -seed 1 -topology gateway:2 -chaos kill-restart -retries 0 > /dev/null

soak-record: ## regenerate the committed soak record (gateway topology riding kill-restart chaos)
	$(GO) run ./cmd/bwasoak -duration $(SOAK_DURATION) -seed 1 -topology gateway:2 -chaos kill-restart -retries 0 -report BENCH_soak.json > /dev/null

clean:
	$(GO) clean ./...
	rm -f $(BWALINT)
