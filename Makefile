GO ?= go

.PHONY: build test vet race serve demo bench bench-record clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/server/ ./internal/pipeline/ ./internal/seq/ ./internal/rescache/ ./internal/core/ ./internal/obs/ ./pkg/...

serve: ## run the alignment server on a synthetic genome
	$(GO) run ./cmd/bwaserve -addr :8080 -synthetic 200000

demo: ## in-process client/server round trip
	$(GO) run ./examples/serverdemo

bench:
	$(GO) test -bench . -benchtime 1x ./...

bench-record: ## regenerate the committed kernel benchmark record
	$(GO) run ./cmd/kernelbench -json > BENCH_kernels.json

clean:
	$(GO) clean ./...
