// readmapping runs the workload the paper's introduction motivates — a
// resequencing experiment — through both implementations, verifies the
// outputs are identical (the paper's like-for-like replacement requirement),
// and reports the speedup and mapping accuracy.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/pipeline"
)

func main() {
	ref, err := datasets.Genome(datasets.DefaultGenome("chr1", 500_000, 11))
	if err != nil {
		log.Fatal(err)
	}
	reads, err := datasets.Simulate(ref, datasets.D4) // 5000 x 101 bp
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference %d bp, %d reads x %d bp\n", ref.Lpac(), len(reads), len(reads[0].Seq))

	opts := core.DefaultOptions()
	base, err := core.NewAligner(ref, core.ModeBaseline, opts)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := core.NewAligner(ref, core.ModeOptimized, opts)
	if err != nil {
		log.Fatal(err)
	}

	rb := pipeline.Run(base, reads, pipeline.Config{Threads: 2})
	ro := pipeline.Run(opt, reads, pipeline.Config{Threads: 2})
	fmt.Printf("baseline : %v\n", rb.Wall)
	fmt.Printf("optimized: %v (x%.2f)\n", ro.Wall, float64(rb.Wall)/float64(ro.Wall))

	if !bytes.Equal(rb.SAM, ro.SAM) {
		log.Fatal("outputs differ — the like-for-like guarantee is broken!")
	}
	fmt.Println("outputs are byte-identical (like-for-like replacement holds)")

	// Score accuracy against the simulation truth encoded in read names.
	good, mapped := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(string(ro.SAM)), "\n") {
		f := strings.Split(line, "\t")
		flag, _ := strconv.Atoi(f[1])
		if flag&(core.FlagSecondary|core.FlagSupplementary|core.FlagUnmapped) != 0 {
			continue
		}
		mapped++
		pos, _ := strconv.Atoi(f[3])
		truth, rev, _ := datasets.TruePos(f[0])
		if rev == (flag&core.FlagReverse != 0) && abs(pos-1-truth) <= 12 {
			good++
		}
	}
	fmt.Printf("accuracy: %d/%d primary alignments at the simulated locus (%.1f%%)\n",
		good, mapped, 100*float64(good)/float64(mapped))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
