// readmapping runs the workload the paper's introduction motivates — a
// resequencing experiment — through both implementations via the public
// SDK (pkg/bwamem), verifies the outputs are identical (the paper's
// like-for-like replacement requirement), and reports the speedup and
// mapping accuracy.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"repro/internal/datasets"
	"repro/pkg/bwamem"
)

func main() {
	idx, err := bwamem.Synthetic(500_000, 11)
	if err != nil {
		log.Fatal(err)
	}
	reads, err := idx.SimulateReads(5000, 101, 104)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference %d bp, %d reads x %d bp\n", idx.ReferenceLength(), len(reads), len(reads[0].Seq))

	align := func(mode bwamem.Mode) ([]byte, time.Duration) {
		aln, err := bwamem.New(idx, bwamem.WithMode(mode), bwamem.WithThreads(2))
		if err != nil {
			log.Fatal(err)
		}
		defer aln.Close()
		start := time.Now()
		sam, err := aln.AlignSAM(context.Background(), reads)
		if err != nil {
			log.Fatal(err)
		}
		return sam, time.Since(start)
	}
	samBase, wallBase := align(bwamem.ModeBaseline)
	samOpt, wallOpt := align(bwamem.ModeOptimized)
	fmt.Printf("baseline : %v\n", wallBase)
	fmt.Printf("optimized: %v (x%.2f)\n", wallOpt, float64(wallBase)/float64(wallOpt))

	if !bytes.Equal(samBase, samOpt) {
		log.Fatal("outputs differ — the like-for-like guarantee is broken!")
	}
	fmt.Println("outputs are byte-identical (like-for-like replacement holds)")

	// Score accuracy against the simulation truth encoded in read names.
	good, mapped := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(string(samOpt)), "\n") {
		if strings.HasPrefix(line, "@") {
			continue
		}
		f := strings.Split(line, "\t")
		flag, _ := strconv.Atoi(f[1])
		if flag&(bwamem.FlagSecondary|bwamem.FlagSupplementary|bwamem.FlagUnmapped) != 0 {
			continue
		}
		mapped++
		pos, _ := strconv.Atoi(f[3])
		truth, rev, _ := datasets.TruePos(f[0])
		if rev == (flag&bwamem.FlagReverse != 0) && abs(pos-1-truth) <= 12 {
			good++
		}
	}
	fmt.Printf("accuracy: %d/%d primary alignments at the simulated locus (%.1f%%)\n",
		good, mapped, 100*float64(good)/float64(mapped))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
