// Quickstart: index a reference, map a handful of reads, and print SAM —
// the minimal end-to-end use of the public SDK (pkg/bwamem), with no
// reference files needed.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/pkg/bwamem"
)

func main() {
	// 1. An index. Real users would Build from FASTA (bwamem.BuildFile),
	//    or Open/OpenMmap a prebuilt .bwago; here we synthesize 100 kbp.
	idx, err := bwamem.Synthetic(100_000, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. An aligner over it. ModeOptimized (the default) is the paper's
	//    design; ModeBaseline is original BWA-MEM. Both give identical
	//    output. Options tune threads, batching, and scoring.
	aln, err := bwamem.New(idx, bwamem.WithThreads(2))
	if err != nil {
		log.Fatal(err)
	}
	defer aln.Close()

	// 3. Some reads. Real users would parse FASTQ with bwamem.ReadFastq.
	reads, err := idx.SimulateReads(10, 100, 2)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Map and print a complete SAM document (header + records).
	sam, err := aln.AlignSAM(context.Background(), reads)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(sam)
	fmt.Fprintf(os.Stderr, "mapped %d reads\n", len(reads))
}
