// Quickstart: index a small reference, map a handful of reads, and print
// SAM — the minimal end-to-end use of the library's public surface.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/pipeline"
)

func main() {
	// 1. A reference genome. Real users would parse FASTA with
	//    seq.ReferenceFromFasta; here we synthesize 100 kbp.
	ref, err := datasets.Genome(datasets.DefaultGenome("demo", 100_000, 1))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the aligner. ModeOptimized is the paper's design (η=32
	//    FM-index, flat suffix array, batched extension); ModeBaseline is
	//    original BWA-MEM. Both give identical output.
	aln, err := core.NewAligner(ref, core.ModeOptimized, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Some reads. Real users would parse FASTQ with seq.ReadFastq.
	reads, err := datasets.Simulate(ref, datasets.Profile{
		Name: "demo", NumReads: 10, ReadLen: 100, SubRate: 0.01, IndelRate: 0.1, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Map and print SAM.
	res := pipeline.Run(aln, reads, pipeline.Config{Threads: 2})
	fmt.Print(aln.SAMHeader())
	os.Stdout.Write(res.SAM)
	fmt.Fprintf(os.Stderr, "mapped %d reads in %v\n", res.Reads, res.Wall)
}
