// Serverdemo exercises the alignment server end to end as a client would:
// it starts an in-process server over a synthetic genome, fires concurrent
// single-end FASTQ and paired-end JSON requests at it over real HTTP,
// shows the response streaming (first SAM bytes arriving while the rest of
// the request is still aligning), a client disconnect freeing its
// admission budget, and duplicate-heavy traffic (PCR-duplicate style)
// being served from the result cache, and finishes with the server's own
// /metrics view.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/seq"
	"repro/internal/server"
)

func main() {
	// 1. Reference + resident index, as bwaserve does at startup.
	ref, err := datasets.Genome(datasets.DefaultGenome("demo", 120_000, 7))
	if err != nil {
		log.Fatal(err)
	}
	aln, err := core.NewAligner(ref, core.ModeOptimized, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultServerConfig()
	cfg.Threads = 4
	cfg.BatchSize = 128
	srv, err := server.New(aln, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("server listening on", base)

	// 2. Concurrent single-end requests (raw FASTQ bodies). The server
	//    coalesces their reads into shared batches.
	reads, err := datasets.Simulate(ref, datasets.D4.Scaled(0.04)) // 200 reads
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for part := 0; part < 4; part++ {
		part := part
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := reads[part*50 : (part+1)*50]
			var body bytes.Buffer
			seq.WriteFastq(&body, sub)
			resp, err := http.Post(base+"/align?header=0", "application/x-fastq", &body)
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			sam, _ := io.ReadAll(resp.Body)
			lines := strings.Split(strings.TrimSuffix(string(sam), "\n"), "\n")
			fmt.Printf("single-end request %d: %d -> %d SAM records (first: %.60s...)\n",
				part, len(sub), len(lines), lines[0])
		}()
	}
	wg.Wait()

	// 3. One paired-end request with a JSON body.
	r1, r2, err := datasets.SimulatePairs(ref, datasets.DefaultPairs(datasets.D4.Scaled(0.01)))
	if err != nil {
		log.Fatal(err)
	}
	type jsonRead struct {
		Name string `json:"name"`
		Seq  string `json:"seq"`
		Qual string `json:"qual,omitempty"`
	}
	payload := struct {
		Reads1 []jsonRead `json:"reads1"`
		Reads2 []jsonRead `json:"reads2"`
	}{}
	for i := range r1 {
		payload.Reads1 = append(payload.Reads1, jsonRead{r1[i].Name, string(r1[i].Seq), string(r1[i].Qual)})
		payload.Reads2 = append(payload.Reads2, jsonRead{r2[i].Name, string(r2[i].Seq), string(r2[i].Qual)})
	}
	body, _ := json.Marshal(payload)
	resp, err := http.Post(base+"/align/paired?header=0", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	sam, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("paired-end request: %d pairs -> %d SAM records\n",
		len(r1), strings.Count(string(sam), "\n"))

	// 4. Response streaming: one big request, read incrementally. The first
	//    SAM bytes arrive while most of the request is still in the queue —
	//    the server no longer buffers the whole response.
	big := make([]seq.Read, 0, 20*len(reads))
	for i := 0; i < 20; i++ {
		big = append(big, reads...)
	}
	var bigBody bytes.Buffer
	seq.WriteFastq(&bigBody, big)
	t0 := time.Now()
	resp, err = http.Post(base+"/align?header=0", "application/x-fastq", &bigBody)
	if err != nil {
		log.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadByte(); err != nil {
		log.Fatal(err)
	}
	ttfb := time.Since(t0)
	rest, _ := io.ReadAll(br)
	total := time.Since(t0)
	resp.Body.Close()
	fmt.Printf("streaming: %d reads -> first byte after %v, full %d-byte SAM after %v\n",
		len(big), ttfb.Round(time.Microsecond), len(rest)+1, total.Round(time.Microsecond))

	// 5. Cancellation: a client that gives up mid-request has its queued
	//    work dropped and its admission budget released. The deadline is
	//    chosen to land after admission but well before alignment finishes.
	ctx, cancel := context.WithTimeout(context.Background(), ttfb/2)
	defer cancel()
	var cancelBody bytes.Buffer
	seq.WriteFastq(&cancelBody, big)
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, base+"/align?header=0", &cancelBody)
	if cresp, err := http.DefaultClient.Do(req); err != nil {
		fmt.Printf("cancelled client: %v\n", ctx.Err())
	} else {
		io.Copy(io.Discard, cresp.Body)
		cresp.Body.Close()
		fmt.Println("cancellation demo: request finished before the deadline fired (fast machine)")
	}
	// 6. Duplicate-heavy traffic: real sequencing runs repeat the same
	//    sequence many times (PCR/optical duplicates). The server caches
	//    alignment regions by sequence, so a 90%-duplicate request costs
	//    roughly the unique 10% in pipeline work — every copy still gets
	//    its own record, rendered under its own read name.
	dupDemo(base, reads)

	// Let the server finish abandoning the request before reading /metrics.
	for i := 0; i < 1000; i++ {
		hr, err := http.Get(base + "/healthz")
		if err != nil {
			log.Fatal(err)
		}
		hb, _ := io.ReadAll(hr.Body)
		hr.Body.Close()
		if strings.Contains(string(hb), `"reads_inflight":0`) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// 7. The server's own view of what just happened.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\n/metrics:")
	for _, line := range strings.Split(strings.TrimSpace(string(metrics)), "\n") {
		if strings.Contains(line, "requests_total") || strings.Contains(line, "reads_total") ||
			strings.Contains(line, "batches") || strings.Contains(line, "stage_seconds{") ||
			strings.Contains(line, "cancelled") || strings.Contains(line, "dropped") ||
			strings.Contains(line, "cache") {
			fmt.Println(" ", line)
		}
	}
}

// dupDemo fires a duplicate-heavy single-end request — 10% unique reads,
// each repeated 10 times under fresh names — and reports the cache's view
// of it alongside the wall time of an equivalent all-unique request.
func dupDemo(base string, unique []seq.Read) {
	cacheStats := func() (hits, misses int64) {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		for _, line := range strings.Split(string(body), "\n") {
			if n, ok := strings.CutPrefix(line, "bwaserve_cache_hits_total "); ok {
				fmt.Sscan(n, &hits)
			}
			if n, ok := strings.CutPrefix(line, "bwaserve_cache_misses_total "); ok {
				fmt.Sscan(n, &misses)
			}
		}
		return hits, misses
	}
	h0, m0 := cacheStats()

	// 90% duplication: every unique read appears 10 times, each copy under
	// its own name (as PCR duplicates would).
	var dup []seq.Read
	for copyN := 0; copyN < 10; copyN++ {
		for i, r := range unique {
			dup = append(dup, seq.Read{
				Name: fmt.Sprintf("dup%d.%d", i, copyN), Seq: r.Seq, Qual: r.Qual})
		}
	}
	var body bytes.Buffer
	seq.WriteFastq(&body, dup)
	t0 := time.Now()
	resp, err := http.Post(base+"/align?header=0", "application/x-fastq", &body)
	if err != nil {
		log.Fatal(err)
	}
	sam, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(t0)

	h1, m1 := cacheStats()
	fmt.Printf("duplicate-heavy: %d reads (%d unique) -> %d SAM records in %v; cache served %d hits / %d misses (%.0f%% hit rate)\n",
		len(dup), len(unique), strings.Count(string(sam), "\n"), elapsed.Round(time.Microsecond),
		h1-h0, m1-m0, 100*float64(h1-h0)/float64(h1-h0+m1-m0))
}
