// Serverdemo exercises the alignment service end to end through the
// public SDK: it starts an in-process server (pkg/bwamem.NewServer) over a
// synthetic genome and drives it with the Go client (pkg/bwaclient) over
// real HTTP — concurrent single-end requests, a paired-end request, the
// response stream delivering its first records while the rest of the
// request is still aligning, a typed API error with its request ID, a
// client cancellation freeing its admission budget, duplicate-heavy
// traffic (PCR-duplicate style) served from the result cache, and finally
// the server's own /v1/metrics view.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/pkg/bwaclient"
	"repro/pkg/bwamem"
)

// clientReads converts SDK reads to client reads (field-identical types).
func clientReads(reads []bwamem.Read) []bwaclient.Read {
	out := make([]bwaclient.Read, len(reads))
	for i, r := range reads {
		out[i] = bwaclient.Read(r)
	}
	return out
}

func main() {
	// 1. Reference + resident index + server, as bwaserve does at startup.
	idx, err := bwamem.Synthetic(120_000, 7)
	if err != nil {
		log.Fatal(err)
	}
	aln, err := bwamem.New(idx)
	if err != nil {
		log.Fatal(err)
	}
	cfg := bwamem.DefaultServerConfig()
	cfg.Threads = 4
	cfg.BatchSize = 128
	srv, err := bwamem.NewServer(aln, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.SetLogf(func(format string, args ...any) {
		fmt.Printf("  [server] "+format+"\n", args...)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("server listening on", base, "(API under /v1)")

	c, err := bwaclient.New(base)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Concurrent single-end requests. The server coalesces their reads
	//    into shared batches; each caller gets exactly its own records.
	reads, err := idx.SimulateReads(200, 101, 104)
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for part := 0; part < 4; part++ {
		part := part
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := clientReads(reads[part*50 : (part+1)*50])
			sam, err := c.AlignSAM(context.Background(), sub)
			if err != nil {
				log.Fatal(err)
			}
			lines := strings.Split(strings.TrimSuffix(string(sam), "\n"), "\n")
			fmt.Printf("single-end request %d: %d -> %d SAM records (first: %.60s...)\n",
				part, len(sub), len(lines), lines[0])
		}()
	}
	wg.Wait()

	// 3. One paired-end request.
	r1, r2, err := idx.SimulatePairs(50, 101, 9)
	if err != nil {
		log.Fatal(err)
	}
	psam, err := c.AlignPairedSAM(context.Background(), clientReads(r1), clientReads(r2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paired-end request: %d pairs -> %d SAM records\n",
		len(r1), strings.Count(string(psam), "\n"))

	// 4. Response streaming: one big request consumed record by record.
	//    The first records arrive while most of the request is still in
	//    the queue — the server does not buffer the whole response.
	big := make([]bwaclient.Read, 0, 20*len(reads))
	for i := 0; i < 20; i++ {
		big = append(big, clientReads(reads)...)
	}
	t0 := time.Now()
	st, err := c.Align(context.Background(), big)
	if err != nil {
		log.Fatal(err)
	}
	var ttfb time.Duration
	records := 0
	for st.Next() {
		if records == 0 {
			ttfb = time.Since(t0)
		}
		records++
	}
	if err := st.Err(); err != nil {
		log.Fatal(err)
	}
	st.Close()
	fmt.Printf("streaming: %d reads (request %s) -> first record after %v, all %d records after %v\n",
		len(big), st.RequestID(), ttfb.Round(time.Microsecond), records, time.Since(t0).Round(time.Microsecond))

	// 5. Typed errors: an invalid read is rejected with a machine-readable
	//    code and the request ID to quote at the server's logs.
	_, err = c.Align(context.Background(), []bwaclient.Read{{Name: "bad", Seq: []byte("AC GT")}})
	var ae *bwaclient.APIError
	if errors.As(err, &ae) {
		fmt.Printf("typed error: HTTP %d, code=%s, request_id=%s\n", ae.StatusCode, ae.Code, ae.RequestID)
	}

	// 6. Cancellation: a client that gives up mid-request has its queued
	//    work dropped and its admission budget released; the server logs
	//    the request ID (see [server] line). The deadline lands after
	//    admission but well before alignment finishes.
	ctx, cancel := context.WithTimeout(context.Background(), ttfb/2)
	if _, err := c.AlignSAM(ctx, big); err != nil {
		fmt.Printf("cancelled client: %v\n", ctx.Err())
	} else {
		fmt.Println("cancellation demo: request finished before the deadline fired (fast machine)")
	}
	cancel()

	// 7. Duplicate-heavy traffic: real sequencing runs repeat the same
	//    sequence many times (PCR/optical duplicates). The server caches
	//    alignment regions by sequence, so a 90%-duplicate request costs
	//    roughly the unique 10% in pipeline work — every copy still gets
	//    its own record, rendered under its own read name.
	dupDemo(c, clientReads(reads))

	// Let the server finish abandoning the cancelled request before
	// reading /v1/metrics.
	for i := 0; i < 1000; i++ {
		h, err := c.Health(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		if h.ReadsInflight == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// 8. The server's own view of what just happened.
	metrics, err := c.Metrics(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n/v1/metrics:")
	for _, line := range strings.Split(strings.TrimSpace(metrics), "\n") {
		if strings.Contains(line, "requests_total") || strings.Contains(line, "reads_total") ||
			strings.Contains(line, "batches") || strings.Contains(line, "stage_seconds{") ||
			strings.Contains(line, "cancelled") || strings.Contains(line, "dropped") ||
			strings.Contains(line, "cache") {
			fmt.Println(" ", line)
		}
	}
}

// dupDemo fires a duplicate-heavy single-end request — 10% unique reads,
// each repeated 10 times under fresh names — and reports the cache's view.
func dupDemo(c *bwaclient.Client, unique []bwaclient.Read) {
	cacheStats := func() (hits, misses int64) {
		metrics, err := c.Metrics(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		for _, line := range strings.Split(metrics, "\n") {
			if n, ok := strings.CutPrefix(line, "bwaserve_cache_hits_total "); ok {
				fmt.Sscan(n, &hits)
			}
			if n, ok := strings.CutPrefix(line, "bwaserve_cache_misses_total "); ok {
				fmt.Sscan(n, &misses)
			}
		}
		return hits, misses
	}
	h0, m0 := cacheStats()

	// 90% duplication: every unique read appears 10 times, each copy under
	// its own name (as PCR duplicates would).
	var dup []bwaclient.Read
	for copyN := 0; copyN < 10; copyN++ {
		for i, r := range unique {
			dup = append(dup, bwaclient.Read{
				Name: fmt.Sprintf("dup%d.%d", i, copyN), Seq: r.Seq, Qual: r.Qual})
		}
	}
	t0 := time.Now()
	sam, err := c.AlignSAM(context.Background(), dup)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)

	h1, m1 := cacheStats()
	fmt.Printf("duplicate-heavy: %d reads (%d unique) -> %d SAM records in %v; cache served %d hits / %d misses (%.0f%% hit rate)\n",
		len(dup), len(unique), strings.Count(string(sam), "\n"), elapsed.Round(time.Microsecond),
		h1-h0, m1-m0, 100*float64(h1-h0)/float64(h1-h0+m1-m0))
}
