// smemsearch demonstrates the seeding layer directly: build an FM-index,
// find the super-maximal exact matches of a query (paper Algorithm 4), and
// resolve their reference positions through the suffix-array lookup kernel —
// the SMEM and SAL stages in isolation.
package main

import (
	"fmt"
	"log"

	"repro/internal/datasets"
	"repro/internal/fmindex"
	"repro/internal/sal"
	"repro/internal/seq"
)

func main() {
	ref, err := datasets.Genome(datasets.DefaultGenome("demo", 50_000, 3))
	if err != nil {
		log.Fatal(err)
	}
	// Index the doubled reference (forward + reverse complement), as
	// BWA-MEM does, in the paper's optimized flavor.
	idx, fullSA, err := fmindex.Build(ref.Doubled(), fmindex.Optimized)
	if err != nil {
		log.Fatal(err)
	}
	lookup := sal.NewFlat(fullSA)

	// A query: 60 bp of reference with one mismatch planted in the middle.
	q := append([]byte(nil), ref.Pac[10000:10060]...)
	q[30] = (q[30] + 1) & 3
	fmt.Printf("query: %s\n", seq.Decode(q))

	// All SMEMs overlapping each position (swept left to right).
	var buf fmindex.SMEMBuf
	var mems []fmindex.BiInterval
	for pos := 0; pos < len(q); {
		mems, pos = idx.SMEM1(q, pos, 1, &buf, mems)
	}
	fmt.Printf("%d SMEMs:\n", len(mems))
	for _, m := range mems {
		fmt.Printf("  query[%3d:%3d) len %2d, %d hit(s):", m.QBeg, m.QEnd, m.Len(), m.S)
		// Resolve up to 4 occurrences via the SAL kernel.
		for k := 0; k < m.S && k < 4; k++ {
			row := lookup.Lookup(m.K + k)
			fwd, rev := ref.DepackPos(row, m.Len())
			strand := '+'
			if rev {
				strand = '-'
			}
			fmt.Printf(" %d%c", fwd, strand)
		}
		fmt.Println()
	}

	// The full three-pass seeding used by the aligner (SMEMs + re-seeding +
	// LAST-like pass).
	seeds := idx.CollectIntervals(q, fmindex.DefaultSeedOpts(), &buf, nil)
	fmt.Printf("three-pass seeding yields %d seed intervals\n", len(seeds))
}
