// pairedend demonstrates the paired-end SDK API: simulate read pairs with
// a known insert-size distribution, align both ends through
// bwamem.AlignPairedSAM, and verify that the pipeline re-discovers the
// distribution and emits proper pairs with consistent TLEN — the
// downstream contract variant callers depend on.
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/pkg/bwamem"
)

func main() {
	idx, err := bwamem.Synthetic(400_000, 23)
	if err != nil {
		log.Fatal(err)
	}
	const (
		nPairs  = 2000
		readLen = 101
	)
	insertMean := 3 * readLen // SimulatePairs' insert model
	fmt.Printf("simulating %d pairs, insert mean %d bp\n", nPairs, insertMean)
	r1, r2, err := idx.SimulatePairs(nPairs, readLen, 104)
	if err != nil {
		log.Fatal(err)
	}

	aln, err := bwamem.New(idx, bwamem.WithThreads(2))
	if err != nil {
		log.Fatal(err)
	}
	defer aln.Close()
	sam, err := aln.AlignPairedSAM(context.Background(), r1, r2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aligned %d records\n", 2*nPairs)

	proper, total := 0, 0
	var tlenSum, tlenN float64
	for _, line := range strings.Split(strings.TrimSpace(string(sam)), "\n") {
		if strings.HasPrefix(line, "@") {
			continue
		}
		f := strings.Split(line, "\t")
		flag, _ := strconv.Atoi(f[1])
		if flag&bwamem.FlagFirst == 0 {
			continue // count each pair once, via read 1
		}
		total++
		if flag&bwamem.FlagProperPair != 0 {
			proper++
			if tl, _ := strconv.Atoi(f[8]); tl != 0 {
				if tl < 0 {
					tl = -tl
				}
				tlenSum += float64(tl)
				tlenN++
			}
		}
	}
	fmt.Printf("proper pairs: %d/%d (%.1f%%)\n", proper, total, 100*float64(proper)/float64(total))
	fmt.Printf("mean |TLEN| of proper pairs: %.1f bp (simulated %d bp)\n",
		tlenSum/tlenN, insertMean)
}
