// pairedend demonstrates the paired-end API: simulate read pairs with a
// known insert-size distribution, align both ends, and verify that the
// pipeline re-discovers the distribution and emits proper pairs with
// consistent TLEN — the downstream contract variant callers depend on.
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/pipeline"
)

func main() {
	ref, err := datasets.Genome(datasets.DefaultGenome("chr1", 400_000, 23))
	if err != nil {
		log.Fatal(err)
	}
	prof := datasets.DefaultPairs(datasets.D4.Scaled(0.4)) // 2000 pairs
	fmt.Printf("simulating %d pairs, insert %d±%d bp\n",
		prof.NumReads, prof.InsertMean, prof.InsertStd)
	r1, r2, err := datasets.SimulatePairs(ref, prof)
	if err != nil {
		log.Fatal(err)
	}

	aln, err := core.NewAligner(ref, core.ModeOptimized, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res := pipeline.RunPaired(aln, r1, r2, pipeline.Config{Threads: 2})
	fmt.Printf("aligned %d records in %v\n", res.Reads, res.Wall)

	proper, total := 0, 0
	var tlenSum, tlenN float64
	for _, line := range strings.Split(strings.TrimSpace(string(res.SAM)), "\n") {
		f := strings.Split(line, "\t")
		flag, _ := strconv.Atoi(f[1])
		if flag&core.FlagFirst == 0 {
			continue // count each pair once, via read 1
		}
		total++
		if flag&core.FlagProperPair != 0 {
			proper++
			if tl, _ := strconv.Atoi(f[8]); tl != 0 {
				if tl < 0 {
					tl = -tl
				}
				tlenSum += float64(tl)
				tlenN++
			}
		}
	}
	fmt.Printf("proper pairs: %d/%d (%.1f%%)\n", proper, total, 100*float64(proper)/float64(total))
	fmt.Printf("mean |TLEN| of proper pairs: %.1f bp (simulated %d bp)\n",
		tlenSum/tlenN, prof.InsertMean)
}
