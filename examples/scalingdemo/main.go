// scalingdemo sweeps worker threads over the optimized pipeline on this
// machine — a miniature of the paper's Figure 4 single-socket scaling
// experiment — and prints the per-kernel time split at each point.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/datasets"
	"repro/internal/pipeline"
)

func main() {
	ref, err := datasets.Genome(datasets.DefaultGenome("chr1", 300_000, 17))
	if err != nil {
		log.Fatal(err)
	}
	reads, err := datasets.Simulate(ref, datasets.D1) // 2000 x 151 bp
	if err != nil {
		log.Fatal(err)
	}
	aln, err := core.NewAligner(ref, core.ModeOptimized, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	var base float64
	for t := 1; t <= runtime.NumCPU(); t++ {
		res := pipeline.Run(aln, reads, pipeline.Config{Threads: t})
		wall := float64(res.Wall.Microseconds()) / 1000
		if t == 1 {
			base = wall
		}
		fmt.Printf("threads=%d  wall %8.1f ms  speedup x%.2f  | SMEM %5.1f%%  SAL %4.1f%%  BSW %5.1f%%  other %5.1f%%\n",
			t, wall, base/wall,
			100*res.Clock.Fraction(counters.StageSMEM),
			100*res.Clock.Fraction(counters.StageSAL),
			100*(res.Clock.Fraction(counters.StageBSWPre)+res.Clock.Fraction(counters.StageBSW)),
			100*(res.Clock.Fraction(counters.StageChain)+res.Clock.Fraction(counters.StageSAMForm)+res.Clock.Fraction(counters.StageMisc)))
	}
}
