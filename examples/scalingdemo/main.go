// scalingdemo sweeps worker threads over the optimized pipeline on this
// machine — a miniature of the paper's Figure 4 single-socket scaling
// experiment — through the public SDK, and prints the per-kernel time
// split at each point (Aligner.StageSeconds).
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/pkg/bwamem"
)

func main() {
	idx, err := bwamem.Synthetic(300_000, 17)
	if err != nil {
		log.Fatal(err)
	}
	reads, err := idx.SimulateReads(2000, 151, 101)
	if err != nil {
		log.Fatal(err)
	}
	var base float64
	for t := 1; t <= runtime.NumCPU(); t++ {
		aln, err := bwamem.New(idx, bwamem.WithThreads(t))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := aln.AlignSAM(context.Background(), reads); err != nil {
			log.Fatal(err)
		}
		wall := float64(time.Since(start).Microseconds()) / 1000

		// Per-stage kernel seconds accumulated by this aligner's pool.
		ss := aln.StageSeconds()
		aln.Close()
		var total float64
		for _, v := range ss {
			total += v
		}
		frac := func(stages ...string) float64 {
			var s float64
			for _, st := range stages {
				s += ss[st]
			}
			if total == 0 {
				return 0
			}
			return 100 * s / total
		}
		if t == 1 {
			base = wall
		}
		fmt.Printf("threads=%d  wall %8.1f ms  speedup x%.2f  | SMEM %5.1f%%  SAL %4.1f%%  BSW %5.1f%%  other %5.1f%%\n",
			t, wall, base/wall,
			frac("SMEM"), frac("SAL"), frac("BSW-pre", "BSW"),
			frac("CHAIN", "SAM-FORM", "Misc"))
	}
}
