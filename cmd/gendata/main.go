// Command gendata writes a synthetic reference FASTA and simulated
// single-end and paired-end FASTQ files, so the bwamem CLI can be exercised
// end to end without external data (the Table 3 stand-in in file form).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/datasets"
	"repro/internal/seq"
)

func main() {
	var (
		dir    = flag.String("dir", ".", "output directory")
		length = flag.Int("genome", 200_000, "reference length (bp)")
		scale  = flag.Float64("scale", 0.1, "read-count scale over the D4 profile")
		seed   = flag.Int64("seed", 99, "generator seed")
	)
	flag.Parse()
	ref, err := datasets.Genome(datasets.DefaultGenome("chrT", *length, *seed))
	if err != nil {
		log.Fatal(err)
	}
	write := func(name string, fn func(*os.File) error) {
		f, err := os.Create(filepath.Join(*dir, name))
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote", filepath.Join(*dir, name))
	}
	write("ref.fa", func(f *os.File) error {
		return seq.WriteFasta(f, []seq.FastaRecord{{Name: "chrT", Seq: seq.Decode(ref.Pac)}}, 80)
	})
	reads, err := datasets.Simulate(ref, datasets.D4.Scaled(*scale))
	if err != nil {
		log.Fatal(err)
	}
	write("reads.fq", func(f *os.File) error { return seq.WriteFastq(f, reads) })
	r1, r2, err := datasets.SimulatePairs(ref, datasets.DefaultPairs(datasets.D4.Scaled(*scale/2)))
	if err != nil {
		log.Fatal(err)
	}
	write("reads_1.fq", func(f *os.File) error { return seq.WriteFastq(f, r1) })
	write("reads_2.fq", func(f *os.File) error { return seq.WriteFastq(f, r2) })
}
