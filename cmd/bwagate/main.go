// Command bwagate is the gateway tier in front of a bwaserve replica
// fleet: it speaks the same versioned /v1 HTTP API and fans align
// requests out across the configured replicas, merging the ordered SAM
// streams back into responses byte-identical to a single server's.
//
//	bwagate -addr :8080 -replicas http://10.0.0.1:8080,http://10.0.0.2:8080
//
// Routing is consistent-hash on each read's encoded sequence, so
// duplicate-heavy traffic keeps every replica's result cache hot, with
// bounded-load spill to the next ring node when the owner is busy.
// Replicas are health-gated: periodic /v1/readyz probes plus passive
// failure detection stop new assignments to a draining or dead replica
// (in-flight streams finish), and a succeeding probe re-adds it. A
// partition whose replica dies mid-stream is retried on the next healthy
// ring node, resuming after the record groups already delivered.
// SIGINT/SIGTERM drain gracefully, exactly like bwaserve.
//
// Endpoints: POST /v1/align, POST /v1/align/paired, GET /v1/healthz,
// GET /v1/readyz, GET /v1/metrics (unversioned aliases included). See
// ARCHITECTURE.md's "Gateway tier" section for the routing and merge
// contracts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func die(err error) {
	fmt.Fprintln(os.Stderr, "bwagate:", err)
	os.Exit(1)
}

func main() {
	fs := flag.NewFlagSet("bwagate", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	cfg := gateway.Flags(fs)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bwagate -replicas <url,url,...> [flags]\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	if len(fs.Args()) != 0 {
		die(fmt.Errorf("unexpected arguments %v; replicas are configured with -replicas", fs.Args()))
	}

	gw, err := gateway.New(*cfg)
	if err != nil {
		die(err)
	}
	gw.SetLogf(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "[bwagate] "+format+"\n", args...)
	})

	httpSrv := &http.Server{Addr: *addr, Handler: gw}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "[bwagate] listening on %s, routing across %d replicas (API /v1/align, /v1/align/paired, /v1/healthz, /v1/readyz, /v1/metrics)\n",
			*addr, len(cfg.Replicas))
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "[bwagate] %v: draining (timeout %v)\n", sig, *drain)
		//bwalint:ignore ctxflow shutdown drain deliberately outlives any request context
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := gw.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "[bwagate]", err)
		}
		cancel()
		// The HTTP connection drain gets its own budget: clients may still
		// be reading merged SAM responses the replicas already produced.
		//bwalint:ignore ctxflow shutdown drain deliberately outlives any request context
		hctx, hcancel := context.WithTimeout(context.Background(), *drain)
		if err := httpSrv.Shutdown(hctx); err != nil {
			fmt.Fprintln(os.Stderr, "[bwagate]", err)
		}
		hcancel()
		fmt.Fprintln(os.Stderr, "[bwagate] bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			die(err)
		}
	}
}
