// Command bwamem is the end-user aligner CLI, mirroring bwa-mem2's
// interface and built entirely on the public SDK (pkg/bwamem):
//
//	bwamem index ref.fa                  build ref.fa.bwago
//	bwamem mem [flags] ref.fa reads.fq   map reads, SAM on stdout
//
// The -mode flag switches between the paper's two implementations (the
// output is identical either way; only the speed differs).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/pkg/bwamem"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "index":
		cmdIndex(os.Args[2:])
	case "mem":
		cmdMem(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  bwamem index [-format v2|v1] [-o out.bwago] <ref.fa>
  bwamem mem [-t N] [-mode baseline|optimized] [-a] [-T score] <ref.fa[.bwago]> <reads.fq> [mates.fq]
`)
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "bwamem:", err)
	os.Exit(1)
}

func cmdIndex(args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	out := fs.String("o", "", "output index path (default <ref>.bwago)")
	format := fs.String("format", "v2", "index format: v2 (page-aligned, mmap-able) or v1 (legacy)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	if *format != "v1" && *format != "v2" {
		die(fmt.Errorf("unknown index format %q (want v1 or v2)", *format))
	}
	refPath := fs.Arg(0)
	fmt.Fprintf(os.Stderr, "[index] building BWT and suffix array for %s...\n", refPath)
	idx, err := bwamem.BuildFile(refPath)
	if err != nil {
		die(err)
	}
	path := *out
	if path == "" {
		path = refPath + ".bwago"
	}
	w, err := os.Create(path)
	if err != nil {
		die(err)
	}
	if *format == "v1" {
		err = idx.WriteLegacy(w)
	} else {
		err = idx.Write(w)
	}
	if err != nil {
		w.Close()
		die(err)
	}
	if err := w.Close(); err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "[index] wrote %s: %d contigs, %d bp (format %s)\n",
		path, len(idx.Contigs()), idx.ReferenceLength(), *format)
}

func cmdMem(args []string) {
	fs := flag.NewFlagSet("mem", flag.ExitOnError)
	threads := fs.Int("t", 0, "worker threads (0 = NumCPU)")
	modeStr := fs.String("mode", "optimized", "implementation: baseline or optimized")
	all := fs.Bool("a", false, "output secondary alignments")
	minScore := fs.Int("T", 30, "minimum score to output")
	batch := fs.Int("batch", 0, "reads per batch (0 = default)")
	fs.Parse(args)
	if fs.NArg() != 2 && fs.NArg() != 3 {
		usage()
	}
	mode, err := bwamem.ParseMode(*modeStr)
	if err != nil {
		die(err)
	}

	idx, err := bwamem.OpenOrBuild(fs.Arg(0))
	if err != nil {
		die(err)
	}
	if idx.Info().Source == "fasta-build" {
		fmt.Fprintf(os.Stderr, "[mem] no prebuilt index; indexed %d bp in memory (build %s.bwago with `bwamem index` to skip this)\n",
			idx.ReferenceLength(), fs.Arg(0))
	} else {
		fmt.Fprintf(os.Stderr, "[mem] loaded prebuilt index (%s)\n", idx.Info().Source)
	}
	loadReads := func(path string) []bwamem.Read {
		rf, err := os.Open(path)
		if err != nil {
			die(err)
		}
		defer rf.Close()
		reads, err := bwamem.ReadFastq(rf)
		if err != nil {
			die(err)
		}
		return reads
	}
	reads := loadReads(fs.Arg(1))

	aln, err := bwamem.New(idx,
		bwamem.WithMode(mode),
		bwamem.WithThreads(*threads),
		bwamem.WithBatchSize(*batch),
		bwamem.WithMinOutputScore(*minScore),
		bwamem.WithSecondaryOutput(*all),
	)
	if err != nil {
		die(err)
	}
	defer aln.Close()

	start := time.Now()
	nReads := len(reads)
	var sam []byte
	if fs.NArg() == 3 { // paired-end: two FASTQ files
		mates := loadReads(fs.Arg(2))
		if len(mates) != len(reads) {
			die(fmt.Errorf("paired files hold %d and %d reads", len(reads), len(mates)))
		}
		nReads += len(mates)
		sam, err = aln.AlignPairedSAM(context.Background(), reads, mates)
	} else {
		sam, err = aln.AlignSAM(context.Background(), reads)
	}
	if err != nil {
		die(err)
	}
	wall := time.Since(start)

	out := bufio.NewWriterSize(os.Stdout, 1<<20)
	if _, err := out.Write(sam); err != nil {
		die(err)
	}
	if err := out.Flush(); err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "[mem] %d reads in %v (%s mode, %d threads)\n",
		nReads, wall.Round(time.Millisecond), aln.Mode(), aln.Threads())
}
