// Command bwamem is the end-user aligner CLI, mirroring bwa-mem2's
// interface:
//
//	bwamem index ref.fa                  build ref.fa.bwago
//	bwamem mem [flags] ref.fa reads.fq   map reads, SAM on stdout
//
// The -mode flag switches between the paper's two implementations (the
// output is identical either way; only the speed differs).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/seq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "index":
		cmdIndex(os.Args[2:])
	case "mem":
		cmdMem(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  bwamem index [-format v2|v1] [-o out.bwago] <ref.fa>
  bwamem mem [-t N] [-mode baseline|optimized] [-a] [-T score] <ref.fa[.bwago]> <reads.fq> [mates.fq]
`)
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "bwamem:", err)
	os.Exit(1)
}

func cmdIndex(args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	out := fs.String("o", "", "output index path (default <ref>.bwago)")
	format := fs.String("format", "v2", "index format: v2 (page-aligned, mmap-able) or v1 (legacy)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	if *format != "v1" && *format != "v2" {
		die(fmt.Errorf("unknown index format %q (want v1 or v2)", *format))
	}
	refPath := fs.Arg(0)
	f, err := os.Open(refPath)
	if err != nil {
		die(err)
	}
	defer f.Close()
	ref, err := seq.ReferenceFromFasta(f)
	if err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "[index] %d contigs, %d bp; building BWT and suffix array...\n",
		len(ref.Contigs), ref.Lpac())
	pi, err := core.BuildPrebuilt(ref)
	if err != nil {
		die(err)
	}
	path := *out
	if path == "" {
		path = refPath + ".bwago"
	}
	w, err := os.Create(path)
	if err != nil {
		die(err)
	}
	if *format == "v1" {
		err = pi.WriteIndex(w)
	} else {
		err = pi.WriteIndexV2(w)
	}
	if err != nil {
		w.Close()
		die(err)
	}
	if err := w.Close(); err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "[index] wrote %s (format %s)\n", path, *format)
}

func loadOrBuild(refPath string) (*core.Prebuilt, error) {
	idxPath := refPath
	if !strings.HasSuffix(idxPath, ".bwago") {
		idxPath += ".bwago"
	}
	if f, err := os.Open(idxPath); err == nil {
		defer f.Close()
		fmt.Fprintf(os.Stderr, "[mem] loading index %s\n", idxPath)
		return core.ReadIndex(f)
	}
	f, err := os.Open(refPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ref, err := seq.ReferenceFromFasta(f)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "[mem] no prebuilt index; indexing %d bp in memory\n", ref.Lpac())
	return core.BuildPrebuilt(ref)
}

func cmdMem(args []string) {
	fs := flag.NewFlagSet("mem", flag.ExitOnError)
	threads := fs.Int("t", runtime.NumCPU(), "worker threads")
	modeStr := fs.String("mode", "optimized", "implementation: baseline or optimized")
	all := fs.Bool("a", false, "output secondary alignments")
	minScore := fs.Int("T", 30, "minimum score to output")
	batch := fs.Int("batch", 512, "reads per batch (optimized layout)")
	fs.Parse(args)
	if fs.NArg() != 2 && fs.NArg() != 3 {
		usage()
	}
	mode := core.ModeOptimized
	switch *modeStr {
	case "baseline":
		mode = core.ModeBaseline
	case "optimized":
	default:
		die(fmt.Errorf("unknown mode %q", *modeStr))
	}
	pi, err := loadOrBuild(fs.Arg(0))
	if err != nil {
		die(err)
	}
	loadReads := func(path string) []seq.Read {
		rf, err := os.Open(path)
		if err != nil {
			die(err)
		}
		defer rf.Close()
		reads, err := seq.ReadFastq(rf)
		if err != nil {
			die(err)
		}
		return reads
	}
	reads := loadReads(fs.Arg(1))
	opts := core.DefaultOptions()
	opts.OutputAll = *all
	opts.ScoreThreshold = *minScore
	aln, err := core.NewAlignerFrom(pi, mode, opts)
	if err != nil {
		die(err)
	}
	cfg := pipeline.Config{Threads: *threads, BatchSize: *batch}
	var res *pipeline.Result
	if fs.NArg() == 3 { // paired-end: two FASTQ files
		mates := loadReads(fs.Arg(2))
		if len(mates) != len(reads) {
			die(fmt.Errorf("paired files hold %d and %d reads", len(reads), len(mates)))
		}
		res = pipeline.RunPaired(aln, reads, mates, cfg)
	} else {
		res = pipeline.Run(aln, reads, cfg)
	}
	out := bufio.NewWriterSize(os.Stdout, 1<<20)
	out.WriteString(aln.SAMHeader())
	out.Write(res.SAM)
	if err := out.Flush(); err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "[mem] %d reads in %v (%s mode, %d threads)\n",
		res.Reads, res.Wall.Round(1000000), mode, *threads)
}
