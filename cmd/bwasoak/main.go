// Command bwasoak sustains a seeded mixed workload against a live
// alignment server — in-process by default, a spawned bwaserve subprocess
// in chaos mode, or any external /v1 target — and checks the invariants a
// single request can't: byte-identity against the offline pipeline,
// typed error envelopes on every rejection, no goroutine or heap growth,
// the p99 latency SLO, and clean drain.
//
// The JSON report (schema bwago-soak/v1) goes to stdout. Exit status: 0
// when every invariant held, 1 with the violations named on stderr when
// any failed, 2 on setup errors.
//
//	bwasoak -duration 30s -seed 1
//	bwasoak -duration 2m -chaos kill-restart
//	bwasoak -duration 1m -target http://localhost:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/soak"
)

func main() {
	fs := flag.NewFlagSet("bwasoak", flag.ExitOnError)
	o := soak.Flags(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: bwasoak [flags]\n\nflags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	rep, err := soak.Run(ctx, *o, logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bwasoak:", err)
		os.Exit(2)
	}
	if o.Report != "" {
		f, err := os.Create(o.Report)
		if err == nil {
			err = rep.Write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bwasoak: writing report:", err)
			os.Exit(2)
		}
	}
	if err := rep.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwasoak:", err)
		os.Exit(2)
	}
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "bwasoak: %d invariant violation(s):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "bwasoak: all invariants held")
}
