// Command bwalint machine-enforces the repo's prose contracts: the
// MappedIndex read-only aliasing rule, request-context plumbing, the
// pkg/ facade boundary, atomic-counter access discipline, and checked
// stream-write errors.
//
// It runs two ways:
//
//	bwalint ./...                                # standalone, from source
//	go vet -vettool=$(command -v bwalint) ./...  # as a vet tool (make lint)
//
// Suppress a finding with an annotated directive on (or right above) the
// line: //bwalint:ignore <analyzer> <reason>.
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/boundary"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/mmapalias"
	"repro/internal/analysis/streamerr"
)

func main() {
	analysis.Main(
		mmapalias.Analyzer,
		ctxflow.Analyzer,
		boundary.Analyzer,
		atomicfield.Analyzer,
		streamerr.Analyzer,
	)
}
