// Command bwalint machine-enforces the repo's prose contracts: the
// MappedIndex read-only aliasing rule, request-context plumbing, the
// pkg/ facade boundary, atomic-counter access discipline, checked
// stream-write errors, request-scoped goroutine lifetimes, a global
// mutex acquisition order, and allocation discipline in
// //bwalint:hot-annotated kernels.
//
// It runs two ways:
//
//	bwalint ./...                                # standalone, from source
//	go vet -vettool=$(command -v bwalint) ./...  # as a vet tool (make lint)
//
// Findings ratchet against lint.baseline.json (-baseline): entries
// listed there are tolerated, anything new fails, and entries that no
// longer fire are themselves errors until pruned (-update-baseline).
//
// Suppress a finding with an annotated directive on (or right above) the
// line: //bwalint:ignore <analyzer> <reason>.
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func main() {
	analysis.Main(suite.Analyzers()...)
}
