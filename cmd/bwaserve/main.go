// Command bwaserve is the long-running alignment server: it loads (or
// builds) the reference and FM-index once at startup, keeps them resident,
// and serves single-end and paired-end alignment requests over HTTP,
// multiplexing concurrent callers onto the paper's batch-staged pipeline.
//
//	bwaserve -addr :8080 ref.fa              serve a FASTA reference
//	bwaserve -addr :8080 ref.fa.bwago        serve a prebuilt index
//	bwaserve -addr :8080 -synthetic 200000   serve a synthetic genome (demo)
//
// Endpoints: POST /align, POST /align/paired, GET /healthz, GET /metrics.
// Request bodies are decoded incrementally and SAM responses are streamed
// back chunk by chunk as batches complete; a disconnected client's (or a
// -request-timeout expired request's) unstarted work is dropped from the
// queue. Duplicate single-end read sequences (PCR/optical duplicates) are
// served from a sharded result cache (-cache, -cache-bytes) instead of
// re-running the alignment pipeline. SIGINT/SIGTERM drain gracefully:
// in-flight requests complete, new ones are rejected with 503, then the
// process exits.
//
// See ARCHITECTURE.md for the full request path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/seq"
	"repro/internal/server"
)

func die(err error) {
	fmt.Fprintln(os.Stderr, "bwaserve:", err)
	os.Exit(1)
}

func main() {
	fs := flag.NewFlagSet("bwaserve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	modeStr := fs.String("mode", "optimized", "implementation: baseline or optimized")
	threads := fs.Int("t", 0, "worker threads (0 = NumCPU)")
	batch := fs.Int("batch", core.DefaultBatchSize, "reads per batch / coalescing target")
	maxInflight := fs.Int("max-inflight", core.DefaultMaxInFlightReads, "max reads admitted at once (429 beyond)")
	maxRequest := fs.Int("max-request-reads", 0, "max reads per request (0 = max-inflight)")
	maxReadLen := fs.Int("max-read-len", core.DefaultMaxReadLen, "max bases per read (413 beyond)")
	linger := fs.Duration("linger", core.DefaultCoalesceLinger, "partial-batch coalescing window (negative disables)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request alignment deadline (0 = none)")
	cache := fs.Bool("cache", true, "cache single-end results by read sequence (duplicate-heavy traffic)")
	cacheBytes := fs.Int64("cache-bytes", core.DefaultCacheBytes, "result-cache capacity in bytes")
	cacheShards := fs.Int("cache-shards", core.DefaultCacheShards, "result-cache shard count (rounded up to a power of two)")
	drain := fs.Duration("drain", core.DefaultDrainTimeout, "graceful-shutdown drain timeout")
	synthetic := fs.Int("synthetic", 0, "serve a synthetic genome of this many bp instead of a reference file")
	seed := fs.Int64("seed", 42, "seed for -synthetic")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bwaserve [flags] <ref.fa[.bwago]>\n       bwaserve [flags] -synthetic <bp>\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	cfg := core.DefaultServerConfig()
	cfg.Threads = *threads
	cfg.BatchSize = *batch
	cfg.MaxInFlightReads = *maxInflight
	cfg.MaxReadsPerRequest = *maxRequest
	cfg.MaxReadLen = *maxReadLen
	cfg.CoalesceLinger = *linger
	cfg.RequestTimeout = *reqTimeout
	cfg.DrainTimeout = *drain
	cfg.CacheEnabled = *cache
	cfg.CacheBytes = *cacheBytes
	cfg.CacheShards = *cacheShards
	switch *modeStr {
	case "baseline":
		cfg.Mode = core.ModeBaseline
	case "optimized":
		cfg.Mode = core.ModeOptimized
	default:
		die(fmt.Errorf("unknown mode %q", *modeStr))
	}

	aln, err := buildAligner(fs.Args(), *synthetic, *seed, cfg.Mode)
	if err != nil {
		die(err)
	}
	srv, err := server.New(aln, cfg)
	if err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "[bwaserve] index resident: %d contigs, %d bp; %d workers, batch %d, %s mode\n",
		len(aln.Ref.Contigs), aln.Ref.Lpac(), srv.Config().Threads, srv.Config().BatchSize, cfg.Mode)

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "[bwaserve] listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "[bwaserve] %v: draining (timeout %v)\n", sig, cfg.DrainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "[bwaserve]", err)
		}
		cancel()
		// The HTTP connection drain gets its own budget: clients may still
		// be reading large SAM responses the pipeline already produced.
		hctx, hcancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
		if err := httpSrv.Shutdown(hctx); err != nil {
			fmt.Fprintln(os.Stderr, "[bwaserve]", err)
		}
		hcancel()
		fmt.Fprintln(os.Stderr, "[bwaserve] bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			die(err)
		}
	}
}

// buildAligner resolves the reference source: a prebuilt .bwago index, a
// FASTA file (indexed in memory), or a synthetic genome.
func buildAligner(args []string, synthetic int, seed int64, mode core.Mode) (*core.Aligner, error) {
	opts := core.DefaultOptions()
	if synthetic > 0 {
		if len(args) != 0 {
			return nil, fmt.Errorf("-synthetic and a reference path are mutually exclusive")
		}
		ref, err := datasets.Genome(datasets.DefaultGenome("synthetic", synthetic, seed))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "[bwaserve] generated synthetic genome: %d bp (seed %d)\n", synthetic, seed)
		return core.NewAligner(ref, mode, opts)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("expected one reference path (or -synthetic); run with -h for usage")
	}
	path := args[0]
	if strings.HasSuffix(path, ".bwago") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		pi, err := core.ReadIndex(f)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "[bwaserve] loaded prebuilt index %s\n", path)
		return core.NewAlignerFrom(pi, mode, opts)
	}
	// FASTA: prefer a sibling prebuilt index when present.
	if f, err := os.Open(path + ".bwago"); err == nil {
		defer f.Close()
		pi, err := core.ReadIndex(f)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "[bwaserve] loaded prebuilt index %s.bwago\n", path)
		return core.NewAlignerFrom(pi, mode, opts)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ref, err := seq.ReferenceFromFasta(f)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "[bwaserve] indexing %d bp in memory (build %s.bwago with `bwamem index` to skip this)\n",
		ref.Lpac(), path)
	start := time.Now()
	aln, err := core.NewAligner(ref, mode, opts)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "[bwaserve] index built in %v\n", time.Since(start).Round(time.Millisecond))
	return aln, nil
}
