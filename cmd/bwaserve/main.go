// Command bwaserve is the long-running alignment server: it loads (or
// builds) the reference and FM-index once at startup, keeps them resident,
// and serves single-end and paired-end alignment requests over HTTP,
// multiplexing concurrent callers onto the paper's batch-staged pipeline.
//
//	bwaserve -addr :8080 ref.fa                        serve a FASTA reference
//	bwaserve -addr :8080 ref.fa.bwago                  serve a prebuilt index
//	bwaserve -addr :8080 -index-mmap ref.fa.bwago      mmap a v2 index (shared page cache)
//	bwaserve -addr :8080 -synthetic 200000             serve a synthetic genome (demo)
//
// With -index-mmap the (v2) index is mapped read-only instead of copied to
// the heap: start-up is near-instant regardless of index size and N
// bwaserve processes serving the same reference share one page-cached copy.
// The mapping is unmapped only after the graceful drain completes.
//
// Endpoints: POST /align, POST /align/paired, GET /healthz, GET /metrics.
// Request bodies are decoded incrementally and SAM responses are streamed
// back chunk by chunk as batches complete; a disconnected client's (or a
// -request-timeout expired request's) unstarted work is dropped from the
// queue. Duplicate single-end read sequences (PCR/optical duplicates) are
// served from a sharded result cache (-cache, -cache-bytes) instead of
// re-running the alignment pipeline. SIGINT/SIGTERM drain gracefully:
// in-flight requests complete, new ones are rejected with 503, then the
// process exits.
//
// See ARCHITECTURE.md for the full request path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/seq"
	"repro/internal/server"
)

func die(err error) {
	fmt.Fprintln(os.Stderr, "bwaserve:", err)
	os.Exit(1)
}

func main() {
	fs := flag.NewFlagSet("bwaserve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	modeStr := fs.String("mode", "optimized", "implementation: baseline or optimized")
	threads := fs.Int("t", 0, "worker threads (0 = NumCPU)")
	batch := fs.Int("batch", core.DefaultBatchSize, "reads per batch / coalescing target")
	maxInflight := fs.Int("max-inflight", core.DefaultMaxInFlightReads, "max reads admitted at once (429 beyond)")
	maxRequest := fs.Int("max-request-reads", 0, "max reads per request (0 = max-inflight)")
	maxReadLen := fs.Int("max-read-len", core.DefaultMaxReadLen, "max bases per read (413 beyond)")
	linger := fs.Duration("linger", core.DefaultCoalesceLinger, "partial-batch coalescing window (negative disables)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request alignment deadline (0 = none)")
	cache := fs.Bool("cache", true, "cache single-end results by read sequence (duplicate-heavy traffic)")
	cacheBytes := fs.Int64("cache-bytes", core.DefaultCacheBytes, "result-cache capacity in bytes")
	cacheShards := fs.Int("cache-shards", core.DefaultCacheShards, "result-cache shard count (rounded up to a power of two)")
	drain := fs.Duration("drain", core.DefaultDrainTimeout, "graceful-shutdown drain timeout")
	indexMmap := fs.Bool("index-mmap", false, "mmap the v2 .bwago index read-only instead of heap-loading it (many server processes share one page-cached copy)")
	synthetic := fs.Int("synthetic", 0, "serve a synthetic genome of this many bp instead of a reference file")
	seed := fs.Int64("seed", 42, "seed for -synthetic")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bwaserve [flags] <ref.fa[.bwago]>\n       bwaserve [flags] -synthetic <bp>\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	cfg := core.DefaultServerConfig()
	cfg.Threads = *threads
	cfg.BatchSize = *batch
	cfg.MaxInFlightReads = *maxInflight
	cfg.MaxReadsPerRequest = *maxRequest
	cfg.MaxReadLen = *maxReadLen
	cfg.CoalesceLinger = *linger
	cfg.RequestTimeout = *reqTimeout
	cfg.DrainTimeout = *drain
	cfg.CacheEnabled = *cache
	cfg.CacheBytes = *cacheBytes
	cfg.CacheShards = *cacheShards
	switch *modeStr {
	case "baseline":
		cfg.Mode = core.ModeBaseline
	case "optimized":
		cfg.Mode = core.ModeOptimized
	default:
		die(fmt.Errorf("unknown mode %q", *modeStr))
	}

	li, err := buildAligner(fs.Args(), *synthetic, *seed, cfg.Mode, *indexMmap)
	if err != nil {
		die(err)
	}
	aln := li.aln
	srv, err := server.New(aln, cfg)
	if err != nil {
		die(err)
	}
	srv.SetIndexInfo(li.info)
	fmt.Fprintf(os.Stderr, "[bwaserve] index resident: %d contigs, %d bp (%s, %d MiB, loaded in %v); %d workers, batch %d, %s mode\n",
		len(aln.Ref.Contigs), aln.Ref.Lpac(), li.info.Source, li.info.ResidentBytes>>20,
		li.info.LoadTime.Round(time.Millisecond), srv.Config().Threads, srv.Config().BatchSize, cfg.Mode)

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "[bwaserve] listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "[bwaserve] %v: draining (timeout %v)\n", sig, cfg.DrainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
		drainErr := srv.Shutdown(ctx)
		if drainErr != nil {
			fmt.Fprintln(os.Stderr, "[bwaserve]", drainErr)
		}
		cancel()
		// The HTTP connection drain gets its own budget: clients may still
		// be reading large SAM responses the pipeline already produced.
		hctx, hcancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
		if err := httpSrv.Shutdown(hctx); err != nil {
			fmt.Fprintln(os.Stderr, "[bwaserve]", err)
		}
		hcancel()
		// Unmap only now: the scheduler has drained and no worker can still
		// touch slices borrowed from the mapping. If the drain timed out,
		// straggler workers may still be running — leave the mapping to
		// process exit rather than faulting them.
		if li.mapped != nil && drainErr == nil {
			if err := li.mapped.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "[bwaserve]", err)
			}
		}
		fmt.Fprintln(os.Stderr, "[bwaserve] bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			die(err)
		}
	}
}

// loadedIndex is buildAligner's result: the ready aligner, the /metrics
// description of how it was loaded, and — when -index-mmap is in effect —
// the mapping whose lifetime must outlive the drained scheduler.
type loadedIndex struct {
	aln    *core.Aligner
	info   server.IndexInfo
	mapped *core.MappedIndex // non-nil only for mmap loads; Close after drain
}

// buildAligner resolves the reference source: a prebuilt .bwago index
// (heap-loaded, or mmap'd with -index-mmap), a FASTA file (indexed in
// memory, preferring a sibling .bwago), or a synthetic genome.
func buildAligner(args []string, synthetic int, seed int64, mode core.Mode, useMmap bool) (*loadedIndex, error) {
	opts := core.DefaultOptions()
	if synthetic > 0 {
		if len(args) != 0 {
			return nil, fmt.Errorf("-synthetic and a reference path are mutually exclusive")
		}
		if useMmap {
			return nil, fmt.Errorf("-index-mmap needs a prebuilt .bwago index, not -synthetic")
		}
		ref, err := datasets.Genome(datasets.DefaultGenome("synthetic", synthetic, seed))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "[bwaserve] generated synthetic genome: %d bp (seed %d)\n", synthetic, seed)
		start := time.Now()
		aln, err := core.NewAligner(ref, mode, opts)
		if err != nil {
			return nil, err
		}
		return &loadedIndex{aln: aln, info: server.IndexInfo{
			Source: "synthetic-build", LoadTime: time.Since(start), ResidentBytes: aln.IndexFootprint(),
		}}, nil
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("expected one reference path (or -synthetic); run with -h for usage")
	}
	path := args[0]
	idxPath := path
	if !strings.HasSuffix(idxPath, ".bwago") {
		idxPath += ".bwago"
	}
	if _, err := os.Stat(idxPath); err == nil {
		return loadPrebuilt(idxPath, mode, opts, useMmap)
	} else if idxPath == path || useMmap {
		// An explicit .bwago argument (or -index-mmap, which cannot build)
		// must not silently fall back to FASTA parsing.
		if useMmap {
			return nil, fmt.Errorf("-index-mmap needs a prebuilt index: %s not found (build it with `bwamem index %s`)", idxPath, path)
		}
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ref, err := seq.ReferenceFromFasta(f)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "[bwaserve] indexing %d bp in memory (build %s.bwago with `bwamem index` to skip this)\n",
		ref.Lpac(), path)
	start := time.Now()
	aln, err := core.NewAligner(ref, mode, opts)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "[bwaserve] index built in %v\n", time.Since(start).Round(time.Millisecond))
	return &loadedIndex{aln: aln, info: server.IndexInfo{
		Source: "fasta-build", LoadTime: time.Since(start), ResidentBytes: aln.IndexFootprint(),
	}}, nil
}

// loadPrebuilt loads a .bwago file onto the heap or maps it, timing the
// path from open to ready aligner.
func loadPrebuilt(idxPath string, mode core.Mode, opts core.Options, useMmap bool) (*loadedIndex, error) {
	start := time.Now()
	if useMmap {
		mi, err := core.OpenIndexMmap(idxPath)
		if err != nil {
			return nil, err
		}
		aln, err := core.NewAlignerFrom(&mi.Prebuilt, mode, opts)
		if err != nil {
			mi.Close()
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "[bwaserve] mmap'd prebuilt index %s\n", idxPath)
		return &loadedIndex{aln: aln, mapped: mi, info: server.IndexInfo{
			Source: "v2-mmap", Mmap: true, LoadTime: time.Since(start), ResidentBytes: mi.MappedBytes(),
		}}, nil
	}
	f, err := os.Open(idxPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pi, err := core.ReadIndex(f)
	if err != nil {
		return nil, err
	}
	aln, err := core.NewAlignerFrom(pi, mode, opts)
	if err != nil {
		return nil, err
	}
	source := "v1-heap"
	if pi.Occ32 != nil {
		source = "v2-heap"
	}
	fmt.Fprintf(os.Stderr, "[bwaserve] loaded prebuilt index %s\n", idxPath)
	return &loadedIndex{aln: aln, info: server.IndexInfo{
		Source: source, LoadTime: time.Since(start), ResidentBytes: aln.IndexFootprint(),
	}}, nil
}
