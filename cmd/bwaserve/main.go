// Command bwaserve is the long-running alignment server: it loads (or
// builds) the reference and FM-index once at startup, keeps them resident,
// and serves single-end and paired-end alignment requests over the
// versioned /v1 HTTP API, multiplexing concurrent callers onto the paper's
// batch-staged pipeline. It is built entirely on the public SDK
// (pkg/bwamem); pkg/bwaclient is the matching client.
//
//	bwaserve -addr :8080 ref.fa                        serve a FASTA reference
//	bwaserve -addr :8080 ref.fa.bwago                  serve a prebuilt index
//	bwaserve -addr :8080 -index-mmap ref.fa.bwago      mmap a v2 index (shared page cache)
//	bwaserve -addr :8080 -synthetic 200000             serve a synthetic genome (demo)
//
// With -index-mmap the (v2) index is mapped read-only instead of copied to
// the heap: start-up is near-instant regardless of index size and N
// bwaserve processes serving the same reference share one page-cached copy.
// The mapping is unmapped only after the graceful drain completes.
//
// Endpoints: POST /v1/align, POST /v1/align/paired, GET /v1/healthz,
// GET /v1/metrics (the unversioned originals remain as aliases). Request
// bodies are decoded incrementally and SAM responses are streamed back
// chunk by chunk as batches complete; a disconnected client's (or a
// -request-timeout expired request's) unstarted work is dropped from the
// queue and logged with its X-Request-Id. Duplicate single-end read
// sequences (PCR/optical duplicates) are served from a sharded result
// cache (-cache, -cache-bytes) instead of re-running the alignment
// pipeline. SIGINT/SIGTERM drain gracefully: in-flight requests complete,
// new ones are rejected with 503, then the process exits.
//
// See ARCHITECTURE.md for the full request path and the API contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/pkg/bwamem"
)

func die(err error) {
	fmt.Fprintln(os.Stderr, "bwaserve:", err)
	os.Exit(1)
}

func main() {
	fs := flag.NewFlagSet("bwaserve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	modeStr := fs.String("mode", "optimized", "implementation: baseline or optimized")
	threads := fs.Int("t", 0, "worker threads (0 = NumCPU)")
	batch := fs.Int("batch", 0, "reads per batch / coalescing target (0 = 512)")
	maxInflight := fs.Int("max-inflight", 0, "max reads admitted at once, 429 beyond (0 = 65536)")
	maxRequest := fs.Int("max-request-reads", 0, "max reads per request (0 = max-inflight)")
	maxReadLen := fs.Int("max-read-len", 0, "max bases per read, 413 beyond (0 = 65536)")
	linger := fs.Duration("linger", 0, "partial-batch coalescing window (0 = 500µs, negative disables)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request alignment deadline (0 = none)")
	cache := fs.Bool("cache", true, "cache single-end results by read sequence (duplicate-heavy traffic)")
	cacheBytes := fs.Int64("cache-bytes", 0, "result-cache capacity in bytes (0 = 256 MiB)")
	cacheShards := fs.Int("cache-shards", 0, "result-cache shard count, rounded up to a power of two (0 = 64)")
	drain := fs.Duration("drain", 0, "graceful-shutdown drain timeout (0 = 30s)")
	logFormat := fs.String("log-format", "json", "structured request-log format: json or text")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")
	debugRequests := fs.Int("debug-requests", 0, "trace-ring size for GET /v1/debug/requests (0 disables the endpoint)")
	indexMmap := fs.Bool("index-mmap", false, "mmap the v2 .bwago index read-only instead of heap-loading it (many server processes share one page-cached copy)")
	synthetic := fs.Int("synthetic", 0, "serve a synthetic genome of this many bp instead of a reference file")
	seed := fs.Int64("seed", 42, "seed for -synthetic")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bwaserve [flags] <ref.fa[.bwago]>\n       bwaserve [flags] -synthetic <bp>\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	mode, err := bwamem.ParseMode(*modeStr)
	if err != nil {
		die(err)
	}

	idx, err := loadIndex(fs.Args(), *synthetic, *seed, *indexMmap)
	if err != nil {
		die(err)
	}
	aln, err := bwamem.New(idx, bwamem.WithMode(mode))
	if err != nil {
		die(err)
	}

	cfg := bwamem.DefaultServerConfig()
	cfg.Threads = *threads
	cfg.BatchSize = *batch
	cfg.MaxInFlightReads = *maxInflight
	cfg.MaxReadsPerRequest = *maxRequest
	cfg.MaxReadLen = *maxReadLen
	cfg.CoalesceLinger = *linger
	cfg.RequestTimeout = *reqTimeout
	cfg.DrainTimeout = *drain
	cfg.CacheEnabled = *cache
	cfg.CacheBytes = *cacheBytes
	cfg.CacheShards = *cacheShards
	cfg.DebugRequestTraces = *debugRequests
	srv, err := bwamem.NewServer(aln, cfg)
	if err != nil {
		die(err)
	}
	srv.SetLogf(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "[bwaserve] "+format+"\n", args...)
	})
	if err := srv.SetLogOutput(os.Stderr, *logFormat); err != nil {
		die(err)
	}
	if *debugAddr != "" {
		// net/http/pprof registers on DefaultServeMux; serve it on its own
		// listener so profiling never shares a port with the alignment API.
		go func() {
			fmt.Fprintf(os.Stderr, "[bwaserve] pprof listening on %s\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "[bwaserve] pprof:", err)
			}
		}()
	}
	info := idx.Info()
	fmt.Fprintf(os.Stderr, "[bwaserve] index resident: %d contigs, %d bp (%s, loaded in %v); %d workers, batch %d, %s mode\n",
		len(idx.Contigs()), idx.ReferenceLength(), info.Source,
		info.LoadTime.Round(time.Millisecond), srv.Config().Threads, srv.Config().BatchSize, aln.Mode())

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "[bwaserve] listening on %s (API /v1/align, /v1/align/paired, /v1/healthz, /v1/metrics)\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "[bwaserve] %v: draining (timeout %v)\n", sig, srv.Config().DrainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), srv.Config().DrainTimeout)
		drainErr := srv.Shutdown(ctx)
		if drainErr != nil {
			fmt.Fprintln(os.Stderr, "[bwaserve]", drainErr)
		}
		cancel()
		// The HTTP connection drain gets its own budget: clients may still
		// be reading large SAM responses the pipeline already produced.
		hctx, hcancel := context.WithTimeout(context.Background(), srv.Config().DrainTimeout)
		if err := httpSrv.Shutdown(hctx); err != nil {
			fmt.Fprintln(os.Stderr, "[bwaserve]", err)
		}
		hcancel()
		// Unmap only now: the scheduler has drained and no worker can still
		// touch slices borrowed from the mapping. If the drain timed out,
		// straggler workers may still be running — leave the mapping to
		// process exit rather than faulting them.
		if info.Mmap && drainErr == nil {
			if err := idx.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "[bwaserve]", err)
			}
		}
		fmt.Fprintln(os.Stderr, "[bwaserve] bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			die(err)
		}
	}
}

// loadIndex resolves the reference source: a prebuilt .bwago index
// (heap-loaded, or mmap'd with -index-mmap), a FASTA file (indexed in
// memory, preferring a sibling .bwago), or a synthetic genome.
func loadIndex(args []string, synthetic int, seed int64, useMmap bool) (*bwamem.Index, error) {
	if synthetic > 0 {
		if len(args) != 0 {
			return nil, fmt.Errorf("-synthetic and a reference path are mutually exclusive")
		}
		if useMmap {
			return nil, fmt.Errorf("-index-mmap needs a prebuilt .bwago index, not -synthetic")
		}
		fmt.Fprintf(os.Stderr, "[bwaserve] generating synthetic genome: %d bp (seed %d)\n", synthetic, seed)
		return bwamem.Synthetic(synthetic, seed)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("expected one reference path (or -synthetic); run with -h for usage")
	}
	path := args[0]
	if useMmap {
		// -index-mmap cannot build, so it resolves the .bwago path itself
		// instead of going through OpenOrBuild's FASTA fallback.
		idxPath := path
		if !strings.HasSuffix(idxPath, ".bwago") {
			idxPath += ".bwago"
		}
		idx, err := bwamem.OpenMmap(idxPath)
		if err != nil {
			if os.IsNotExist(err) {
				return nil, fmt.Errorf("-index-mmap needs a prebuilt index: %s not found (build it with `bwamem index %s`)", idxPath, path)
			}
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "[bwaserve] mmap'd prebuilt index %s\n", idxPath)
		return idx, nil
	}
	idx, err := bwamem.OpenOrBuild(path)
	if err != nil {
		return nil, err
	}
	if src := idx.Info().Source; src == "fasta-build" {
		fmt.Fprintf(os.Stderr, "[bwaserve] indexed %s in memory in %v (build %s.bwago with `bwamem index` to skip this)\n",
			path, idx.Info().LoadTime.Round(time.Millisecond), path)
	} else {
		fmt.Fprintf(os.Stderr, "[bwaserve] loaded prebuilt index (%s)\n", src)
	}
	return idx, nil
}
