// Command experiments regenerates the paper's application-level
// experiments: Table 1 (run-time breakdown), Figure 4 (thread scaling) and
// Figure 5 (end-to-end baseline-vs-optimized comparison), or everything —
// including the kernel tables — with -all. Its output is the raw material
// recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		genome  = flag.Int("genome", 2_000_000, "synthetic reference length (bp)")
		scale   = flag.Float64("scale", 1.0, "read-count scale over the D1-D5 profiles")
		threads = flag.Int("maxthreads", 0, "top of the Figure 4 sweep (0 = NumCPU)")
		t1      = flag.Bool("table1", false, "run Table 1 (run-time profile)")
		f4      = flag.Bool("fig4", false, "run Figure 4 (thread scaling)")
		f5      = flag.Bool("fig5", false, "run Figure 5 (end-to-end comparison)")
		all     = flag.Bool("all", false, "run every table and figure")
	)
	flag.Parse()
	if !(*t1 || *f4 || *f5 || *all) {
		*all = true
	}
	cfg := experiments.Default()
	cfg.GenomeLen = *genome
	cfg.Scale = *scale
	if *threads > 0 {
		cfg.MaxThreads = *threads
	}
	fmt.Fprintf(os.Stderr, "[experiments] building %d bp environment...\n", cfg.GenomeLen)
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	w := os.Stdout
	run := func(enabled bool, fn func() error) {
		if !enabled && !*all {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	run(*t1, func() error { return experiments.Table1(w, env) })
	run(*all, func() error { return experiments.Table4(w, env) })
	run(*all, func() error { return experiments.Table5(w, env) })
	run(*all, func() error { return experiments.Table6(w, env) })
	run(*all, func() error { return experiments.Table7(w, env) })
	run(*all, func() error { return experiments.Table8(w, env) })
	run(*f4, func() error { return experiments.Figure4(w, env) })
	run(*f5, func() error { return experiments.Figure5(w, env) })
	run(*all, func() error { return experiments.AblationSACompression(w, env) })
	run(*all, func() error { return experiments.AblationBSWWidth(w, env) })
	run(*all, func() error { return experiments.AblationBSWSort(w, env) })
	run(*all, func() error { return experiments.AblationBatchSize(w, env) })
}
