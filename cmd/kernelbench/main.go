// Command kernelbench regenerates the paper's kernel-level experiments:
// Table 4 (SMEM counters), Table 5 (SAL counters), Table 6 (BSW engine
// times), Table 7 (BSW instruction analysis), Table 8 (BSW time breakdown),
// and the design-choice ablations from DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		genome   = flag.Int("genome", 2_000_000, "synthetic reference length (bp)")
		scale    = flag.Float64("scale", 1.0, "read-count scale over the D1-D5 profiles")
		t4       = flag.Bool("table4", false, "run Table 4 (SMEM kernel counters)")
		t5       = flag.Bool("table5", false, "run Table 5 (SAL kernel counters)")
		t6       = flag.Bool("table6", false, "run Table 6 (BSW engine comparison)")
		t7       = flag.Bool("table7", false, "run Table 7 (BSW instruction analysis)")
		t8       = flag.Bool("table8", false, "run Table 8 (BSW time breakdown)")
		abl      = flag.Bool("ablations", false, "run design-choice ablations")
		all      = flag.Bool("all", false, "run everything")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable pipeline benchmark record (JSON) instead of tables")
		nthreads = flag.Int("threads", 0, "worker threads for -json (0 = NumCPU)")
	)
	flag.Parse()
	if !(*t4 || *t5 || *t6 || *t7 || *t8 || *abl || *all) {
		*all = true
	}
	cfg := experiments.Default()
	cfg.GenomeLen = *genome
	cfg.Scale = *scale
	fmt.Fprintf(os.Stderr, "[kernelbench] building %d bp environment...\n", cfg.GenomeLen)
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kernelbench:", err)
		os.Exit(1)
	}
	if *jsonOut {
		// The JSON record is the whole output: stdout stays parseable.
		if err := experiments.WriteBenchJSON(os.Stdout, env, *nthreads); err != nil {
			fmt.Fprintln(os.Stderr, "kernelbench:", err)
			os.Exit(1)
		}
		return
	}
	run := func(enabled bool, fn func() error) {
		if !enabled && !*all {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintln(os.Stderr, "kernelbench:", err)
			os.Exit(1)
		}
	}
	w := os.Stdout
	run(*t4, func() error { return experiments.Table4(w, env) })
	run(*t5, func() error { return experiments.Table5(w, env) })
	run(*t6, func() error { return experiments.Table6(w, env) })
	run(*t7, func() error { return experiments.Table7(w, env) })
	run(*t8, func() error { return experiments.Table8(w, env) })
	run(*abl, func() error {
		if err := experiments.AblationSACompression(w, env); err != nil {
			return err
		}
		if err := experiments.AblationBSWWidth(w, env); err != nil {
			return err
		}
		if err := experiments.AblationBSWSort(w, env); err != nil {
			return err
		}
		return experiments.AblationBatchSize(w, env)
	})
}
